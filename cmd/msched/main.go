// Command msched modulo-schedules a loop written in the textual loop
// format (see internal/looplang) and prints the resulting schedule and
// kernel-only code:
//
//	msched [-machine cydra5|generic|tiny|FILE.mach] [-algo iterative|slack]
//	       [-budget 2] [-priority heightr|fifo|depth|recfirst]
//	       [-delays vliw|conservative] [-timeout 0] [-besteffort]
//	       [-workers N] [-cache] [-verbose] [-mrt] [-gantt N]
//	       [-backsub] [-flat] [-cpuprofile f] [-memprofile f]
//	       [-server addr] file.loop [file2.loop ...]
//
// With no file it reads standard input; with several files it compiles
// each in turn under a `== name ==` header. -mrt prints the schedule's
// modulo reservation table, -gantt N a pipeline diagram of N overlapped
// iterations, -backsub applies recurrence back-substitution first, and
// -flat also reports the explicit prologue/kernel/epilogue schema.
// -workers N races N candidate IIs speculatively (the result is
// bit-identical to the sequential search); -cache memoizes compilations
// across the input files, so structurally identical loops schedule once,
// and reports hit/miss counters at the end. -timeout bounds the whole
// compilation; -besteffort falls back to slack scheduling and then to an
// unpipelined degenerate schedule rather than failing. When -timeout
// expires under -besteffort, the degenerate schedule is still produced
// (the acyclic stage needs no deadline), the degradation report is
// flushed to stderr, and the exit code is 0.
//
// -server addr ships the sources to a running mschedd — or an
// mschedfront fleet — (docs/serving.md) instead of compiling
// in-process; the printed output is byte-identical to local
// compilation. Local-only flags (-verbose, -mrt, -gantt, -flat,
// -backsub, -cache, profiling, -algo) are rejected in this mode. A
// shedding server (429) is retried honoring its Retry-After hint, with
// a bounded total wait; an unreachable or fully-drained serving tier
// falls back to local compilation with a one-line warning instead of
// failing.
//
// Exit codes: 0 success (including a degraded -besteffort result); 2
// usage, flag, or input errors; 3 loop parse error; 4 no schedule found
// (including deadline expiry without -besteffort); 5 internal scheduler
// error; 1 anything else. Diagnostics are one line on stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"modsched/internal/backsub"
	"modsched/internal/codegen"
	"modsched/internal/core"
	"modsched/internal/ir"
	"modsched/internal/listsched"
	"modsched/internal/looplang"
	"modsched/internal/machine"
	"modsched/internal/mii"
	"modsched/internal/modvar"
	"modsched/internal/schedcache"
)

// Exit codes, one per failure class, so scripts can dispatch without
// scraping stderr.
const (
	exitOK       = 0
	exitOther    = 1
	exitUsage    = 2
	exitParse    = 3
	exitNoSched  = 4
	exitInternal = 5
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the whole program behind an exit code, so tests can drive it
// in-process. No panic may escape: anything recovered here is reported as
// a one-line internal-error diagnostic, never a stack trace.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "msched: internal error: %v\n", r)
			code = exitInternal
		}
	}()

	fs := flag.NewFlagSet("msched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		machName   = fs.String("machine", "cydra5", "target machine: cydra5, generic, tiny, or a machlang file (docs/machines.md)")
		budget     = fs.Float64("budget", 2, "BudgetRatio: scheduling steps allowed per operation per II attempt")
		priority   = fs.String("priority", "heightr", "priority function: heightr, fifo, depth, recfirst")
		algo       = fs.String("algo", "iterative", "scheduling algorithm: iterative (the paper's), slack (Huff)")
		delays     = fs.String("delays", "vliw", "delay model: vliw, conservative")
		timeout    = fs.Duration("timeout", 0, "abort compilation after this long (0 = no deadline)")
		besteffort = fs.Bool("besteffort", false, "degrade through slack and unpipelined scheduling instead of failing")
		workers    = fs.Int("workers", 0, "race this many candidate IIs concurrently (0/1 = sequential search)")
		useCache   = fs.Bool("cache", false, "memoize compilations across input files and report hit/miss counters")
		verbose    = fs.Bool("verbose", false, "print the parsed loop and per-op schedule")
		flat       = fs.Bool("flat", false, "also emit explicit prologue/kernel/epilogue code (modulo variable expansion)")
		backsubF   = fs.Bool("backsub", false, "back-substitute closed-form inductions before scheduling")
		mrt        = fs.Bool("mrt", false, "print the schedule's modulo reservation table")
		gantt      = fs.Int("gantt", 0, "print a pipeline diagram with N overlapped iterations")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile of the compilation to this file")
		memProf    = fs.String("memprofile", "", "write an allocation profile to this file on exit")
		serverAddr = fs.String("server", "", "compile via a running mschedd at this address instead of in-process")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage // the flag package already printed the diagnostic
	}
	fail := func(code int, format string, args ...any) int {
		fmt.Fprintf(stderr, "msched: "+format+"\n", args...)
		return code
	}

	if *serverAddr != "" {
		// Served compilation ships sources to mschedd; only the flags that
		// travel on the wire are allowed. Everything local-only — output
		// decorations, transforms, the per-process cache, profiling — is an
		// error rather than a silent no-op. (The serving branch itself is
		// below, after the machine and options are built: the client falls
		// back to local compilation when the serving tier is gone, so it
		// needs the whole local pipeline on standby.)
		for flagName, set := range map[string]bool{
			"-verbose": *verbose, "-mrt": *mrt, "-gantt": *gantt > 0,
			"-flat": *flat, "-backsub": *backsubF, "-cache": *useCache,
			"-cpuprofile": *cpuProf != "", "-memprofile": *memProf != "",
			"-algo": *algo != "iterative",
		} {
			if set {
				return fail(exitUsage, "%s is not supported with -server (the daemon compiles best-effort with its own cache)", flagName)
			}
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(exitUsage, "%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(exitOther, "%v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "msched: %v\n", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "msched: %v\n", err)
			}
			f.Close()
		}()
	}

	m, machSource, err := machine.ResolveSpec(*machName)
	if err != nil {
		return fail(exitUsage, "%v", err)
	}

	opts := core.DefaultOptions()
	opts.BudgetRatio = *budget
	switch *priority {
	case "heightr":
		opts.Priority = core.PriorityHeightR
	case "fifo":
		opts.Priority = core.PriorityFIFO
	case "depth":
		opts.Priority = core.PriorityDepth
	case "recfirst":
		opts.Priority = core.PriorityRecFirst
	default:
		return fail(exitUsage, "unknown priority %q", *priority)
	}
	if *algo != "iterative" && *algo != "slack" {
		return fail(exitUsage, "unknown algorithm %q", *algo)
	}
	opts.SearchWorkers = *workers
	switch *delays {
	case "vliw":
		opts.DelayModel = ir.VLIWDelays
	case "conservative":
		opts.DelayModel = ir.ConservativeDelays
	default:
		return fail(exitUsage, "unknown delay model %q", *delays)
	}

	srcs, err := readInputs(fs, stdin)
	if err != nil {
		return fail(exitUsage, "%v", err)
	}

	if *serverAddr != "" {
		// localOne is the graceful-degradation path: when the serving tier
		// is unreachable (or every replica is ejected), the client compiles
		// the input itself, exactly as it would have without -server.
		lf := flags{algo: *algo, besteffort: *besteffort, timeout: *timeout}
		localOne := func(in input) int {
			ctx := context.Background()
			cancel := context.CancelFunc(func() {})
			if *timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, *timeout)
			}
			defer cancel()
			return compileOne(ctx, in.src, m, opts, nil, lf, stdout, stderr)
		}
		// A file-spec machine travels inline as machlang source; built-in
		// names travel by name. Either way the server compiles against a
		// machine whose fingerprint matches the local one, so the output
		// stays byte-identical to local compilation.
		cf := clientFlags{
			budget: *budget, priority: *priority,
			delays: *delays, workers: *workers, timeout: *timeout,
			besteffort: *besteffort,
		}
		if machSource != "" {
			cf.machineSource = machSource
		} else {
			cf.machine = *machName
		}
		return runServed(*serverAddr, srcs, cf, localOne, stdout, stderr)
	}

	var cache *schedcache.Cache
	if *useCache {
		cache = schedcache.New(0)
	}

	for i, in := range srcs {
		if len(srcs) > 1 {
			if i > 0 {
				fmt.Fprintln(stdout)
			}
			fmt.Fprintf(stdout, "== %s ==\n", in.name)
		}
		// The deadline is per input: each file gets the full -timeout
		// budget. (A single context around the whole loop would hand later
		// files whatever earlier files left over — possibly nothing — and
		// spuriously degrade them.)
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		code := compileOne(ctx, in.src, m, opts, cache, flags{
			algo: *algo, besteffort: *besteffort, verbose: *verbose,
			flat: *flat, backsub: *backsubF, mrt: *mrt, gantt: *gantt,
			timeout: *timeout,
		}, stdout, stderr)
		cancel()
		if code != exitOK {
			return code
		}
	}
	if cache != nil {
		st := cache.Stats()
		fmt.Fprintf(stdout, "\ncache: %d hits, %d misses, %d inflight joins, %d evictions\n",
			st.Hits, st.Misses, st.Inflight, st.Evictions)
	}
	return exitOK
}

// flags carries the per-compilation options of the command line.
type flags struct {
	algo       string
	besteffort bool
	verbose    bool
	flat       bool
	backsub    bool
	mrt        bool
	gantt      int
	timeout    time.Duration
}

// compileOne parses, schedules, and prints one loop, returning an exit
// code. A non-nil cache memoizes the scheduling step across calls.
func compileOne(ctx context.Context, src string, m *machine.Machine, opts core.Options, cache *schedcache.Cache, f flags, stdout, stderr io.Writer) int {
	fail := func(code int, format string, args ...any) int {
		fmt.Fprintf(stderr, "msched: "+format+"\n", args...)
		return code
	}
	loop, err := looplang.Parse(src, m)
	if err != nil {
		return fail(exitParse, "%v", err)
	}

	if f.backsub {
		transformed, rewrites, err := backsub.Apply(loop, m, 1)
		if err != nil {
			return fail(exitOther, "%v", err)
		}
		for _, rw := range rewrites {
			fmt.Fprintf(stdout, "back-substituted op %d: distance %d -> %d\n", rw.Op, rw.OldDist, rw.NewDist)
		}
		loop = transformed
	}

	if f.verbose {
		fmt.Fprint(stdout, looplang.Print(loop))
		fmt.Fprintln(stdout)
	}

	dl, err := ir.Delays(loop, m, opts.DelayModel)
	if err != nil {
		return fail(exitOther, "%v", err)
	}
	bounds, err := mii.Compute(loop, m, dl, nil)
	if err != nil {
		return fail(schedExit(err), "%v", err)
	}
	ls, err := listsched.Schedule(loop, m, dl)
	if err != nil {
		return fail(exitOther, "%v", err)
	}

	fmt.Fprintf(stdout, "loop %s: %d operations, %d edges\n", loop.Name, loop.NumRealOps(), len(loop.Edges))
	fmt.Fprintf(stdout, "ResMII=%d MII=%d non-trivial SCCs=%d acyclic-list SL=%d\n",
		bounds.ResMII, bounds.MII, len(bounds.NonTrivialSCCs), ls.Length)

	// memo routes the scheduling step through the cache when one is
	// enabled; errors are never cached, so the deadline fallback below
	// still runs per input.
	memo := func(compile schedcache.CompileFunc) (*core.Schedule, *core.Degradation, error) {
		if cache == nil {
			return compile()
		}
		return cache.Do(loop, m, opts, compile)
	}
	var sched *core.Schedule
	switch {
	case f.besteffort:
		var deg *core.Degradation
		sched, deg, err = memo(func() (*core.Schedule, *core.Degradation, error) {
			return core.ModuloScheduleBestEffort(ctx, loop, m, opts)
		})
		if err != nil && ctx.Err() != nil &&
			!errors.Is(err, core.ErrInvalidLoop) && !errors.Is(err, core.ErrInvalidMachine) {
			// The deadline killed the pipelined stages mid-chain. -besteffort
			// promises a schedule anyway: the degenerate acyclic stage needs
			// no II search, so run it without a deadline and report the
			// degradation deterministically — the report must not race the
			// timer.
			fallback, aerr := core.ModuloScheduleAcyclic(context.Background(), loop, m, opts)
			if aerr != nil {
				return fail(schedExit(err), "deadline of %v expired and acyclic fallback failed: %v (deadline error: %v)", f.timeout, aerr, err)
			}
			sched = fallback
			deg = &core.Degradation{
				Stage:    core.StageAcyclic,
				Failures: []core.StageFailure{{Stage: "pipelined stages", Err: err}},
			}
			err = nil
		}
		if err == nil && deg.Degraded() {
			// Flush the report before any schedule output, so it is emitted
			// even if a later lowering step fails.
			fmt.Fprintf(stderr, "msched: warning: %s\n", deg)
		}
	case f.algo == "slack":
		sched, _, err = memo(func() (*core.Schedule, *core.Degradation, error) {
			s, serr := core.ModuloScheduleSlackContext(ctx, loop, m, opts)
			return s, nil, serr
		})
	default:
		sched, _, err = memo(func() (*core.Schedule, *core.Degradation, error) {
			s, serr := core.ModuloScheduleContext(ctx, loop, m, opts)
			return s, nil, serr
		})
	}
	if err != nil {
		if ctx.Err() != nil {
			return fail(exitNoSched, "deadline of %v expired: %v", f.timeout, err)
		}
		return fail(schedExit(err), "%v", err)
	}
	fmt.Fprintf(stdout, "II=%d (DeltaII=%d) SL=%d stages=%d scheduling steps=%d\n\n",
		sched.II, sched.II-sched.MII, sched.Length, sched.StageCount(), sched.Stats.SchedSteps)

	if f.verbose {
		printScheduleTable(stdout, sched)
		fmt.Fprintln(stdout)
	}

	if f.mrt {
		fmt.Fprint(stdout, sched.MRTString())
		fmt.Fprintln(stdout)
	}
	if f.gantt > 0 {
		fmt.Fprint(stdout, sched.GanttString(f.gantt))
		fmt.Fprintln(stdout)
	}

	kern, err := codegen.GenerateKernel(sched)
	if err != nil {
		return fail(exitOther, "%v", err)
	}
	fmt.Fprint(stdout, kern.String())

	if f.flat {
		u, err := modvar.PlanUnroll(sched)
		if err != nil {
			return fail(exitOther, "%v", err)
		}
		trips := modvar.ValidTrips(sched.StageCount(), u, 100)
		fl, err := modvar.Generate(sched, trips)
		if err != nil {
			return fail(exitOther, "%v", err)
		}
		fmt.Fprintf(stdout, "\nexplicit schema (for %d trips): unroll U=%d, %d instructions (prologue %d + kernel %d + epilogue %d)\n",
			trips, fl.U, fl.CodeSize(), len(fl.Prologue), len(fl.Kernel), len(fl.Epilogue))
		for _, pi := range fl.Preinit {
			fmt.Fprintf(stdout, "  preinit %v = init(r%d, back %d)\n", pi.Dst, pi.Reg, pi.Back)
		}
	}
	return exitOK
}

// schedExit classifies a compilation error into an exit code.
func schedExit(err error) int {
	switch {
	case errors.Is(err, core.ErrInternal):
		return exitInternal
	case errors.Is(err, core.ErrNoSchedule),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return exitNoSched
	case errors.Is(err, core.ErrInvalidLoop), errors.Is(err, core.ErrInvalidMachine):
		return exitUsage
	default:
		return exitOther
	}
}

func printScheduleTable(w io.Writer, s *core.Schedule) {
	type row struct{ t, id int }
	rows := make([]row, 0, s.Loop.NumOps())
	for i := range s.Loop.Ops {
		rows = append(rows, row{t: s.Times[i], id: i})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].t != rows[j].t {
			return rows[i].t < rows[j].t
		}
		return rows[i].id < rows[j].id
	})
	fmt.Fprintln(w, "time  stage slot  op")
	for _, r := range rows {
		op := s.Loop.Ops[r.id]
		if op.IsPseudo() {
			continue
		}
		alt := s.Machine.MustOpcode(op.Opcode).Alternatives[s.Alts[r.id]]
		fmt.Fprintf(w, "%5d %5d %4d  %s (%s)", r.t, r.t/s.II, r.t%s.II, op.Opcode, alt.Name)
		if op.Comment != "" {
			fmt.Fprintf(w, "  ; %s", op.Comment)
		}
		fmt.Fprintln(w)
	}
}

// input is one loop source to compile, with the name shown in multi-file
// headers.
type input struct {
	name, src string
}

func readInputs(fs *flag.FlagSet, stdin io.Reader) ([]input, error) {
	if fs.NArg() == 0 {
		b, err := io.ReadAll(stdin)
		if err != nil {
			return nil, err
		}
		return []input{{name: "<stdin>", src: string(b)}}, nil
	}
	ins := make([]input, 0, fs.NArg())
	for _, arg := range fs.Args() {
		b, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		ins = append(ins, input{name: filepath.Base(arg), src: string(b)})
	}
	return ins, nil
}
