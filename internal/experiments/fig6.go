package experiments

import (
	"context"
	"fmt"
	"strings"

	"modsched/internal/ir"
	"modsched/internal/machine"
	"modsched/internal/schedcache"
)

// Fig6Point is one point of the Figure 6 sweep: aggregate execution-time
// dilation (fraction over the lower bound) and aggregate scheduling
// inefficiency (operation scheduling steps per operation, counting
// unsuccessful II attempts) at one BudgetRatio.
type Fig6Point struct {
	BudgetRatio  float64
	Dilation     float64
	Inefficiency float64
}

// Fig6Sweep runs the corpus at each BudgetRatio. The paper sweeps 1.0-4.0
// and reads the knee at BudgetRatio 2 (dilation 2.8%, inefficiency 1.59).
func Fig6Sweep(loops []*ir.Loop, m *machine.Machine, ratios []float64) ([]Fig6Point, error) {
	return Fig6SweepWorkers(context.Background(), loops, m, ratios, 0)
}

// Fig6SweepWorkers is Fig6Sweep with an explicit worker count. The sweep
// points run in sequence; within each point the corpus is scheduled in
// parallel, and the aggregates fold over the ordered per-loop results, so
// every point is byte-identical to a sequential run.
func Fig6SweepWorkers(ctx context.Context, loops []*ir.Loop, m *machine.Machine, ratios []float64, workers int) ([]Fig6Point, error) {
	return Fig6SweepCached(ctx, loops, m, ratios, workers, nil)
}

// Fig6SweepCached is Fig6SweepWorkers with an optional compile cache
// shared across the sweep points. Each BudgetRatio participates in the
// cache key, so the cache never mixes results across points; within a
// point it dedupes the corpus's structurally identical loops. A nil
// cache disables memoization.
func Fig6SweepCached(ctx context.Context, loops []*ir.Loop, m *machine.Machine, ratios []float64, workers int, cache *schedcache.Cache) ([]Fig6Point, error) {
	var out []Fig6Point
	for _, br := range ratios {
		cr, err := RunCorpusCached(ctx, loops, m, br, false, workers, cache)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6Point{
			BudgetRatio:  br,
			Dilation:     cr.AggregateDilation(),
			Inefficiency: cr.AggregateInefficiency(),
		})
	}
	return out, nil
}

// DefaultFig6Ratios matches the paper's x axis.
func DefaultFig6Ratios() []float64 {
	return []float64{1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0, 3.5, 4.0}
}

// AggregateDilation is the fractional increase of total execution time
// over the (possibly unachievable) lower bound, over the executed loops.
func (cr *CorpusResult) AggregateDilation() float64 {
	var actual, bound int64
	for _, r := range cr.Loops {
		if r.LoopFreq <= 0 {
			continue
		}
		actual += r.ExecTimeActual()
		bound += r.ExecTimeBound()
	}
	if bound == 0 {
		return 0
	}
	return float64(actual)/float64(bound) - 1
}

// AggregateInefficiency is total operation scheduling steps (including
// unsuccessful II attempts) divided by total operations.
func (cr *CorpusResult) AggregateInefficiency() float64 {
	var steps, ops int64
	for _, r := range cr.Loops {
		steps += r.StepsTotal
		ops += int64(r.N + 2)
	}
	if ops == 0 {
		return 0
	}
	return float64(steps) / float64(ops)
}

// FinalInefficiency is scheduling steps of the successful II attempt per
// operation (the Table 3 "nodes scheduled" aggregate).
func (cr *CorpusResult) FinalInefficiency() float64 {
	var steps, ops int64
	for _, r := range cr.Loops {
		steps += r.StepsFinal
		ops += int64(r.N + 2)
	}
	if ops == 0 {
		return 0
	}
	return float64(steps) / float64(ops)
}

// FormatFig6 renders the sweep as an aligned table with the paper's
// landmark values noted.
func FormatFig6(points []Fig6Point) string {
	var b strings.Builder
	b.WriteString("Figure 6: execution-time dilation and scheduling inefficiency vs BudgetRatio\n")
	b.WriteString("(paper: dilation falls 5.2% -> 2.9% by ratio 1.75, 2.8% at 2; inefficiency dips to ~1.55-1.59 near 1.75-2 then grows)\n")
	fmt.Fprintf(&b, "%12s %18s %22s\n", "BudgetRatio", "Dilation(%)", "Inefficiency(steps/op)")
	for _, p := range points {
		fmt.Fprintf(&b, "%12.2f %18.2f %22.3f\n", p.BudgetRatio, 100*p.Dilation, p.Inefficiency)
	}
	return b.String()
}
