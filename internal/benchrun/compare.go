package benchrun

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Load reads a Report from a JSON file.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchrun: %s: %w", path, err)
	}
	return &rep, nil
}

// Save writes a Report as indented JSON.
func Save(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Compare checks current against baseline and returns one message per
// violation. Timing (ns/op) and allocation counts (allocs/op) regress
// only beyond tol (e.g. 0.20 for 20%) — machine noise is real, exact
// equality is not expected. The schedule-quality metrics, in contrast,
// are deterministic functions of the seeded corpus: any drift there
// means the scheduler's output changed, so they must match exactly.
// Benchmarks present on only one side are reported (a removed benchmark
// silently passing would defeat the gate); improved numbers never fail.
func Compare(baseline, current *Report, tol float64) []string {
	var problems []string
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	seen := make(map[string]bool, len(current.Results))
	for _, cur := range current.Results {
		seen[cur.Name] = true
		b, ok := base[cur.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from baseline (run with -update to record it)", cur.Name))
			continue
		}
		if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*(1+tol) {
			problems = append(problems, fmt.Sprintf("%s: ns/op regressed %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
				cur.Name, b.NsPerOp, cur.NsPerOp, 100*(cur.NsPerOp/b.NsPerOp-1), 100*tol))
		}
		if b.AllocsPerOp > 0 && float64(cur.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol) {
			problems = append(problems, fmt.Sprintf("%s: allocs/op regressed %d -> %d (+%.1f%%, tolerance %.0f%%)",
				cur.Name, b.AllocsPerOp, cur.AllocsPerOp, 100*(float64(cur.AllocsPerOp)/float64(b.AllocsPerOp)-1), 100*tol))
		}
		for k, bv := range b.Metrics {
			cv, ok := cur.Metrics[k]
			if !ok {
				problems = append(problems, fmt.Sprintf("%s: quality metric %q disappeared", cur.Name, k))
				continue
			}
			if cv != bv && !(math.IsNaN(cv) && math.IsNaN(bv)) {
				problems = append(problems, fmt.Sprintf("%s: quality metric %q changed %v -> %v (must be bit-identical)",
					cur.Name, k, bv, cv))
			}
		}
	}
	for _, b := range baseline.Results {
		if !seen[b.Name] {
			problems = append(problems, fmt.Sprintf("%s: present in baseline but not measured", b.Name))
		}
	}
	return problems
}
