// Package backsub implements recurrence back-substitution, one of the
// preprocessing steps the paper lists before modulo scheduling (Schlansker
// & Kathail, "Acceleration of first and higher order recurrences"): a
// closed-form first-order induction
//
//	x = x[-d] + imm
//
// whose self-recurrence constrains the II (RecMII contribution
// ceil(latency/d)) is rewritten as
//
//	x = x[-k*d] + k*imm
//
// so that ceil(latency/(k*d)) fits under a target II. The transformed loop
// computes exactly the same value sequence provided the pre-entry history
// is extended backwards through the recurrence (ExtendHist).
package backsub

import (
	"modsched/internal/ir"
	"modsched/internal/machine"
)

// Rewrite records one transformed operation.
type Rewrite struct {
	// Op is the operation index in the loop.
	Op int
	// Reg is the induction register.
	Reg ir.Reg
	// OldDist/NewDist are the self-recurrence distances; the immediate is
	// scaled by NewDist/OldDist.
	OldDist, NewDist int
}

// Apply back-substitutes every eligible induction in l (in place on a
// clone) so that no rewritten recurrence forces the II above targetII.
// It returns the transformed loop and the rewrites performed. Operations
// are eligible when they are an unpredicated add-with-immediate whose only
// register operand is their own previous value: x = x[-d] + imm.
func Apply(l *ir.Loop, m *machine.Machine, targetII int) (*ir.Loop, []Rewrite, error) {
	if targetII < 1 {
		targetII = 1
	}
	out := l.Clone()
	var rewrites []Rewrite
	for _, op := range out.RealOps() {
		if !eligible(op) {
			continue
		}
		oc, ok := m.Opcode(op.Opcode)
		if !ok {
			continue
		}
		d := op.SrcDists[0]
		// Current contribution ceil(latency/d); skip if already fine.
		if (oc.Latency+d-1)/d <= targetII {
			continue
		}
		// Smallest multiple k*d with ceil(latency/(k*d)) <= targetII.
		needD := (oc.Latency + targetII - 1) / targetII
		k := (needD + d - 1) / d
		newD := k * d
		op.SrcDists[0] = newD
		op.Imm *= int64(k)
		for ei := range out.Edges {
			e := &out.Edges[ei]
			if e.From == op.ID && e.To == op.ID && e.Kind == ir.Flow && e.Distance == d {
				e.Distance = newD
			}
		}
		rewrites = append(rewrites, Rewrite{Op: op.ID, Reg: op.Dest, OldDist: d, NewDist: newD})
	}
	if err := out.Validate(m); err != nil {
		return nil, nil, err
	}
	return out, rewrites, nil
}

// eligible reports whether op is a closed-form induction x = x[-d] + imm.
func eligible(op *ir.Operation) bool {
	switch op.Opcode {
	case "add", "aadd":
	default:
		return false
	}
	if op.Pred != ir.NoReg || op.Dest == ir.NoReg || op.Imm == 0 {
		return false
	}
	if len(op.Srcs) != 1 || op.Srcs[0] != op.Dest {
		return false
	}
	if op.SrcDists == nil || op.SrcDists[0] < 1 {
		return false
	}
	return true
}

// ExtendHist extends an induction's pre-entry history from oldDist to
// newDist seed values by running the recurrence x[-j] = x[-j+oldDist] - imm
// backwards. hist[j-1] is the value j iterations before entry; imm is the
// ORIGINAL per-oldDist step.
func ExtendHist(hist []float64, imm int64, oldDist, newDist int) []float64 {
	out := make([]float64, newDist)
	copy(out, hist)
	for j := oldDist; j < newDist; j++ {
		out[j] = out[j-oldDist] - float64(imm)
	}
	return out
}
