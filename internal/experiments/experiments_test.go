package experiments

import (
	"testing"

	"modsched/internal/core"
	"modsched/internal/machine"
)

func TestTable3SmallCorpus(t *testing.T) {
	m := machine.Cydra5()
	loops, err := SmallCorpus(m, 300)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := RunCorpus(loops, m, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	rows := Table3(cr)
	t.Logf("\n%s", FormatTable3(rows))

	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Dist.Name] = r
	}
	// Shape assertions: generous bands around the paper's values.
	check := func(name string, get func(Table3Row) float64, lo, hi float64) {
		t.Helper()
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing row %q", name)
		}
		v := get(r)
		if v < lo || v > hi {
			t.Errorf("%s = %.3f outside [%.3f, %.3f] (paper %.3f)", name, v, lo, hi, paperValue(r))
		}
	}
	mean := func(r Table3Row) float64 { return r.Dist.Mean }
	freq := func(r Table3Row) float64 { return r.Dist.FreqOfMin }
	check("Number of operations", mean, 12, 28)
	check("II - MII", freq, 0.88, 1.0)                         // paper 0.96
	check("II / MII", mean, 1.0, 1.06)                         // paper 1.01
	check("Number of non-trivial SCCs", freq, 0.65, 0.9)       // paper 0.773
	check("Number of nodes per SCC", freq, 0.8, 1.0)           // paper 0.93
	check("Number of nodes scheduled (ratio)", mean, 1.0, 1.2) // paper 1.03
}

func paperValue(r Table3Row) float64 { return r.Paper.Mean }

func TestSummaryAndFig6Point(t *testing.T) {
	m := machine.Cydra5()
	loops, err := SmallCorpus(m, 200)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := RunCorpus(loops, m, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(cr)
	t.Logf("\n%s", s.Format())
	if s.AtMII < 0.85 {
		t.Errorf("II==MII fraction %.2f below band", s.AtMII)
	}
	if s.Dilation > 0.15 {
		t.Errorf("dilation %.3f above band", s.Dilation)
	}
	if s.Inefficiency < 1.0 || s.Inefficiency > 3.0 {
		t.Errorf("inefficiency %.2f outside [1,3]", s.Inefficiency)
	}
}

func TestTable4Fits(t *testing.T) {
	m := machine.Cydra5()
	loops, err := SmallCorpus(m, 300)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := RunCorpus(loops, m, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	t4 := ComputeTable4(cr)
	t.Logf("\n%s", t4.Format())
	if t4.Edges.A < 1.5 || t4.Edges.A > 5 {
		t.Errorf("edges/op fit %.2f outside [1.5, 5] (paper 3.0)", t4.Edges.A)
	}
	if t4.HeightR.A <= 0 || t4.Estart.A <= 0 {
		t.Errorf("HeightR/Estart fits must be positive: %v %v", t4.HeightR, t4.Estart)
	}
	// The FindTimeSlot cost curve must be positive and increasing over the
	// observed size range (the paper's fit is a shallow upward parabola;
	// with a different machine the curvature split between the linear and
	// quadratic terms shifts, so assert the curve's shape, not one
	// coefficient).
	eval := func(n float64) float64 {
		return t4.FindTimeSlot.A*n*n + t4.FindTimeSlot.B*n + t4.FindTimeSlot.C
	}
	if eval(50) <= 0 || eval(150) <= eval(50) {
		t.Errorf("FindTimeSlot cost curve not increasing-positive: f(50)=%.1f f(150)=%.1f", eval(50), eval(150))
	}
}

func TestUnrollStudyShape(t *testing.T) {
	m := machine.Cydra5()
	loops, err := SmallCorpus(m, 60)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := UnrollStudy(loops, m, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatUnrollStudy(pts))
	for i := 1; i < len(pts); i++ {
		if pts[i].CyclesPerIter > pts[i-1].CyclesPerIter {
			t.Errorf("k=%d: unrolled cost increased", pts[i].K)
		}
	}
	last := pts[len(pts)-1]
	if last.CyclesPerIter < last.ModuloCyclesPerIter {
		t.Errorf("unrolled (k=%d) beat modulo aggregate: %.2f < %.2f",
			last.K, last.CyclesPerIter, last.ModuloCyclesPerIter)
	}
	if last.CodeExpansion < 2 {
		t.Errorf("code expansion %.1fx at k=%d implausibly low", last.CodeExpansion, last.K)
	}
}

func TestRegPressureStudy(t *testing.T) {
	m := machine.Cydra5()
	loops, err := SmallCorpus(m, 80)
	if err != nil {
		t.Fatal(err)
	}
	early, err := RegPressureStudy(loops, m, core.DefaultOptions(), "early")
	if err != nil {
		t.Fatal(err)
	}
	lateOpts := core.DefaultOptions()
	lateOpts.PlaceLate = true
	late, err := RegPressureStudy(loops, m, lateOpts, "late")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatPressure([]*PressurePoint{early, late}))
	if early.RotSize.Mean <= 0 || late.RotSize.Mean <= 0 {
		t.Fatal("degenerate pressure stats")
	}
	// Both configurations must still produce valid schedules; quality may
	// differ but not collapse.
	if late.MeanDeltaII > early.MeanDeltaII+2 {
		t.Errorf("late placement degrades deltaII too much: %.2f vs %.2f", late.MeanDeltaII, early.MeanDeltaII)
	}
}

// TestGeneralityAcrossMachines: the scheduler's headline quality is not an
// artifact of the Cydra 5 model — a clean-RISC machine with simple tables
// must do at least as well.
func TestGeneralityAcrossMachines(t *testing.T) {
	for _, m := range []*machine.Machine{machine.Generic(machine.DefaultUnitConfig()), machine.Tiny()} {
		loops, err := SmallCorpus(m, 150)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := RunCorpus(loops, m, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		s := Summarize(cr)
		t.Logf("%s: II==MII %.1f%% dilation %.2f%% steps/op %.2f", m.Name, 100*s.AtMII, 100*s.Dilation, s.Inefficiency)
		if s.AtMII < 0.93 {
			t.Errorf("%s: II==MII %.2f below 0.93", m.Name, s.AtMII)
		}
	}
}

// TestFig6Shape: dilation decreases monotonically (within noise) with
// BudgetRatio and the knee lands by ratio 2 — the Figure 6 story.
func TestFig6Shape(t *testing.T) {
	m := machine.Cydra5()
	loops, err := SmallCorpus(m, 250)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Fig6Sweep(loops, m, []float64{1.0, 1.5, 2.0, 3.0, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatFig6(pts))
	for i := 1; i < len(pts); i++ {
		if pts[i].Dilation > pts[i-1].Dilation+0.005 {
			t.Errorf("dilation rose from ratio %.2f to %.2f: %.4f -> %.4f",
				pts[i-1].BudgetRatio, pts[i].BudgetRatio, pts[i-1].Dilation, pts[i].Dilation)
		}
	}
	first, at2 := pts[0], pts[2]
	if at2.Dilation > first.Dilation*0.8 {
		t.Errorf("no knee: dilation %.4f at ratio 1 vs %.4f at ratio 2", first.Dilation, at2.Dilation)
	}
	// Inefficiency at the knee is near the paper's 1.55-1.8 band.
	if at2.Inefficiency < 1.0 || at2.Inefficiency > 2.2 {
		t.Errorf("inefficiency at ratio 2 = %.2f outside [1.0, 2.2]", at2.Inefficiency)
	}
}
