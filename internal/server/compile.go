package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"modsched"
	"modsched/internal/core"
	"modsched/internal/ir"
	"modsched/internal/looplang"
	"modsched/internal/machine"
)

// classify maps a compilation error onto the wire kind and HTTP status.
// Precedence mirrors the sentinels' semantics: invalid input beats
// everything (no retry can help), then deadline and budget (a retry with
// more time or budget may succeed, hence 504), then proven infeasibility
// (409 — the request conflicts with the machine model, retrying is
// pointless), and anything else is an internal error.
func classify(err error) (kind string, status int) {
	var pe *looplang.ParseError
	switch {
	case errors.As(err, &pe):
		return KindParse, http.StatusUnprocessableEntity
	case errors.Is(err, core.ErrInvalidLoop), errors.Is(err, core.ErrInvalidMachine):
		return KindInvalid, http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return KindDeadline, http.StatusGatewayTimeout
	case errors.Is(err, core.ErrBudgetExhausted):
		return KindBudget, http.StatusGatewayTimeout
	case errors.Is(err, core.ErrNoSchedule):
		return KindNoSchedule, http.StatusConflict
	default:
		return KindInternal, http.StatusInternalServerError
	}
}

// machineFor resolves a request's machine — a built-in name or an
// inline machlang source — to a shared instance. Sharing one instance
// per name (or per source digest, for inline machines) matters beyond
// allocation: the compile cache memoizes machine fingerprints by
// pointer, so a stable pointer keeps every request on the memoized fast
// path. Inline sources that fail to parse map to KindParse, exactly as
// loop sources do; a validation failure inside one maps to KindInvalid.
func (s *Server) machineFor(req *CompileRequest) (*machine.Machine, *ErrorResponse) {
	if req.MachineSource != "" {
		if req.Machine != "" {
			return nil, &ErrorResponse{Kind: KindInvalid, Error: "machine and machine_source are mutually exclusive"}
		}
		m, err := inlineMachine(req.MachineSource)
		if err != nil {
			var pe *machine.ParseError
			kind := KindParse
			if errors.As(err, &pe) && pe.Line == 0 && pe.Err != nil {
				// Validate failures surface wrapped in a line-less
				// ParseError; they are semantic, not syntactic.
				kind = KindInvalid
			}
			return nil, &ErrorResponse{Kind: kind, Error: err.Error()}
		}
		return m, nil
	}
	name := req.Machine
	if name == "" {
		name = "cydra5"
	}
	if m, ok := s.machines[name]; ok {
		return m, nil
	}
	return nil, &ErrorResponse{Kind: KindInvalid, Error: "unknown machine " + quote(name) + " (want cydra5, generic, tiny, or an inline machine_source)"}
}

// buildOptions translates the request's option spec into scheduler
// options, defaulting every zero field to the paper's configuration.
func buildOptions(spec *OptionsSpec) (core.Options, *ErrorResponse) {
	opts := core.DefaultOptions()
	if spec == nil {
		return opts, nil
	}
	if spec.Budget < 0 {
		return opts, &ErrorResponse{Kind: KindInvalid, Error: "negative budget"}
	}
	if spec.Budget > 0 {
		opts.BudgetRatio = spec.Budget
	}
	switch spec.Priority {
	case "", "heightr":
		opts.Priority = core.PriorityHeightR
	case "fifo":
		opts.Priority = core.PriorityFIFO
	case "depth":
		opts.Priority = core.PriorityDepth
	case "recfirst":
		opts.Priority = core.PriorityRecFirst
	default:
		return opts, &ErrorResponse{Kind: KindInvalid, Error: "unknown priority " + quote(spec.Priority)}
	}
	switch spec.Delays {
	case "", "vliw":
		opts.DelayModel = ir.VLIWDelays
	case "conservative":
		opts.DelayModel = ir.ConservativeDelays
	default:
		return opts, &ErrorResponse{Kind: KindInvalid, Error: "unknown delay model " + quote(spec.Delays)}
	}
	if spec.MaxII < 0 {
		return opts, &ErrorResponse{Kind: KindInvalid, Error: "negative max_ii"}
	}
	opts.MaxII = spec.MaxII
	if spec.Workers < 0 {
		return opts, &ErrorResponse{Kind: KindInvalid, Error: "negative workers"}
	}
	opts.SearchWorkers = spec.Workers
	return opts, nil
}

// compileDeadline derives the per-compile deadline: the request's own
// timeout when given, clamped to the server's ceiling; otherwise the
// server default. Every loop of a batch gets its own full budget — the
// deadline is per compile, never shared across a request's loops.
func (s *Server) compileDeadline(req *CompileRequest) time.Duration {
	d := s.cfg.CompileTimeout
	if req.TimeoutMS > 0 {
		if rd := time.Duration(req.TimeoutMS) * time.Millisecond; rd < d {
			d = rd
		}
	}
	return d
}

// compileItem runs one loop through the full pipeline — parse, bounds,
// cached best-effort scheduling, kernel generation — and folds the
// outcome into a BatchItem. It also feeds the per-loop metrics: outcome
// counts and the scheduler-effort counters.
func (s *Server) compileItem(ctx context.Context, req *CompileRequest) BatchItem {
	if s.testCompileHook != nil {
		s.testCompileHook(req)
	}
	resp, errResp, status := s.compileOne(ctx, req)
	if errResp != nil {
		s.metrics.countLoop(errResp.Kind)
		return BatchItem{Status: status, Error: errResp}
	}
	if resp.Degradation != nil {
		s.metrics.countLoop("degraded")
	} else {
		s.metrics.countLoop("ok")
	}
	return BatchItem{Status: status, Result: resp}
}

// compileOne is the pipeline behind compileItem, mirroring the msched
// CLI stage for stage so the two surfaces classify inputs identically:
// parse, then the Section 2 bounds and the acyclic baseline (whose
// errors — an unschedulable recurrence, say — must win over scheduling
// errors exactly as they do in the CLI), then the cached best-effort
// compile, then kernel lowering.
func (s *Server) compileOne(ctx context.Context, req *CompileRequest) (*CompileResponse, *ErrorResponse, int) {
	m, errResp := s.machineFor(req)
	if errResp != nil {
		return nil, errResp, http.StatusUnprocessableEntity
	}
	opts, errResp := buildOptions(req.Options)
	if errResp != nil {
		return nil, errResp, http.StatusUnprocessableEntity
	}

	loop, err := modsched.ParseLoop(req.Source, m)
	if err != nil {
		kind, status := classify(err)
		return nil, &ErrorResponse{Kind: kind, Error: err.Error()}, status
	}

	bounds, err := modsched.ComputeMII(loop, m, opts.DelayModel)
	if err != nil {
		kind, status := classify(err)
		return nil, &ErrorResponse{Kind: kind, Error: err.Error()}, status
	}
	ls, err := modsched.ListSchedules(loop, m, opts.DelayModel)
	if err != nil {
		kind, status := classify(err)
		return nil, &ErrorResponse{Kind: kind, Error: err.Error()}, status
	}

	cctx, cancel := context.WithTimeout(ctx, s.compileDeadline(req))
	defer cancel()
	sched, deg, err := modsched.CompileBestEffortCached(cctx, s.cache, loop, m, opts)
	if err != nil {
		kind, status := classify(err)
		return nil, &ErrorResponse{Kind: kind, Error: err.Error()}, status
	}
	s.metrics.countEffort(&sched.Stats)

	kern, err := modsched.GenerateKernel(sched)
	if err != nil {
		return nil, &ErrorResponse{Kind: KindInternal, Error: err.Error()}, http.StatusInternalServerError
	}

	resp := &CompileResponse{
		Name:           loop.Name,
		Ops:            loop.NumRealOps(),
		Edges:          len(loop.Edges),
		ResMII:         bounds.ResMII,
		MII:            bounds.MII,
		NonTrivialSCCs: len(bounds.NonTrivialSCCs),
		ListSL:         ls.Length,
		II:             sched.II,
		SL:             sched.Length,
		Stages:         sched.StageCount(),
		SchedSteps:     sched.Stats.SchedSteps,
		Kernel:         kern.String(),
	}
	if deg != nil && deg.Degraded() {
		info := &DegradationInfo{Stage: deg.Stage, Message: deg.String()}
		for _, f := range deg.Failures {
			info.Failures = append(info.Failures, StageFailureInfo{Stage: f.Stage, Error: f.Err.Error()})
		}
		resp.Degradation = info
	}
	return resp, nil, http.StatusOK
}

// quote renders a request-supplied name for a diagnostic.
func quote(s string) string { return strconv.Quote(s) }
