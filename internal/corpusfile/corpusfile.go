// Package corpusfile defines the sharded on-disk corpus format used to
// stream very large synthetic corpora (100k-1M loops) through the
// scheduler without ever holding them in memory.
//
// A corpus is a set of shard files. Each shard is:
//
//	magic    "MSCORP1\n"
//	header   uvarint length + JSON Header (shard index, shard count,
//	         generator seed, record count, global index of the first
//	         record, total record count)
//	records  Count times: uvarint length + looplang text
//
// The framing is deliberately dumb: length-prefixed records make a shard
// seekable (Skip advances one record without parsing it) and make the
// record *bytes* independent of how the corpus was sharded — the
// concatenation of all shards' record payloads in shard order is the
// same byte sequence for 1 shard or 64, which is what lets streamed
// reports be compared byte-for-byte across sharding choices
// (TestShardingInvariant pins this). The header carries provenance
// (seed, totals) so a reader can validate a shard set without trusting
// file names.
package corpusfile

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Magic identifies a shard file; the trailing newline keeps `head -c8`
// output readable.
const Magic = "MSCORP1\n"

// maxRecordLen bounds a single record (a printed loop is a few KB; the
// largest plausible loop is well under 1 MB). A length prefix beyond it
// means a corrupt or foreign file, not a big loop.
const maxRecordLen = 1 << 20

// Header is the self-description at the top of every shard.
type Header struct {
	// Shard is this shard's index in [0, Shards).
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Seed is the generator seed the corpus was produced from.
	Seed int64 `json:"seed"`
	// Count is the number of records in this shard; First is the global
	// index of its first record; Total is the record count across all
	// shards. The contiguous split invariant is
	// First(s) = sum of Count(0..s-1) and sum of Count = Total.
	Count int `json:"count"`
	First int `json:"first"`
	Total int `json:"total"`
}

func (h *Header) validate() error {
	if h.Shards <= 0 || h.Shard < 0 || h.Shard >= h.Shards {
		return fmt.Errorf("corpusfile: bad shard index %d of %d", h.Shard, h.Shards)
	}
	if h.Count < 0 || h.First < 0 || h.Total < 0 || h.First+h.Count > h.Total {
		return fmt.Errorf("corpusfile: inconsistent counts: count=%d first=%d total=%d",
			h.Count, h.First, h.Total)
	}
	return nil
}

// ShardCounts splits total records contiguously over shards: the first
// total%shards shards get one extra record. This is the canonical split
// corpusgen writes and the invariant tests assume.
func ShardCounts(total, shards int) []int {
	counts := make([]int, shards)
	base, extra := total/shards, total%shards
	for s := range counts {
		counts[s] = base
		if s < extra {
			counts[s]++
		}
	}
	return counts
}

// ShardName returns the conventional file name for one shard.
func ShardName(shard int) string { return fmt.Sprintf("shard-%04d.mscorp", shard) }

// Writer emits one shard. Records must be added in order; Close
// verifies that exactly Header.Count were written.
type Writer struct {
	w      *bufio.Writer
	count  int
	target int
	var64  [binary.MaxVarintLen64]byte
}

// NewWriter writes the magic and header to w and returns a Writer for
// the records. w is typically an *os.File; the Writer buffers, so the
// caller must Close (and then close the file) to flush.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	hj, err := json.Marshal(&h)
	if err != nil {
		return nil, err
	}
	sw := &Writer{w: bw, target: h.Count}
	if err := sw.writeBlob(hj); err != nil {
		return nil, err
	}
	return sw, nil
}

func (w *Writer) writeBlob(b []byte) error {
	n := binary.PutUvarint(w.var64[:], uint64(len(b)))
	if _, err := w.w.Write(w.var64[:n]); err != nil {
		return err
	}
	_, err := w.w.Write(b)
	return err
}

// Add appends one record.
func (w *Writer) Add(rec []byte) error {
	if w.count >= w.target {
		return fmt.Errorf("corpusfile: shard full: header promised %d records", w.target)
	}
	if len(rec) > maxRecordLen {
		return fmt.Errorf("corpusfile: record of %d bytes exceeds limit %d", len(rec), maxRecordLen)
	}
	if err := w.writeBlob(rec); err != nil {
		return err
	}
	w.count++
	return nil
}

// Close flushes and verifies the record count. It does not close the
// underlying writer.
func (w *Writer) Close() error {
	if w.count != w.target {
		return fmt.Errorf("corpusfile: shard short: header promised %d records, got %d", w.target, w.count)
	}
	return w.w.Flush()
}

// Reader streams one shard's records.
type Reader struct {
	r    *bufio.Reader
	h    Header
	read int
	buf  []byte
}

// NewReader validates the magic, decodes the header, and returns a
// Reader positioned at the first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("corpusfile: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("corpusfile: bad magic %q", magic)
	}
	sr := &Reader{r: br}
	hj, err := sr.readBlob()
	if err != nil {
		return nil, fmt.Errorf("corpusfile: reading header: %w", err)
	}
	if err := json.Unmarshal(hj, &sr.h); err != nil {
		return nil, fmt.Errorf("corpusfile: decoding header: %w", err)
	}
	if err := sr.h.validate(); err != nil {
		return nil, err
	}
	return sr, nil
}

// Header returns the shard's header.
func (r *Reader) Header() Header { return r.h }

func (r *Reader) readBlob() ([]byte, error) {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, err
	}
	if n > maxRecordLen {
		return nil, fmt.Errorf("corpusfile: record length %d exceeds limit %d", n, maxRecordLen)
	}
	if uint64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, err
	}
	return r.buf, nil
}

// Next returns the next record's bytes, or io.EOF after the last one.
// The returned slice is reused by subsequent calls — copy it to keep it.
func (r *Reader) Next() ([]byte, error) {
	if r.read >= r.h.Count {
		return nil, io.EOF
	}
	rec, err := r.readBlob()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("corpusfile: record %d of %d: %w", r.read, r.h.Count, err)
	}
	r.read++
	return rec, nil
}

// Skip advances past one record without retaining it, or returns io.EOF
// after the last one.
func (r *Reader) Skip() error {
	if r.read >= r.h.Count {
		return io.EOF
	}
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fmt.Errorf("corpusfile: record %d of %d: %w", r.read, r.h.Count, err)
	}
	if n > maxRecordLen {
		return fmt.Errorf("corpusfile: record length %d exceeds limit %d", n, maxRecordLen)
	}
	if _, err := r.r.Discard(int(n)); err != nil {
		return fmt.Errorf("corpusfile: record %d of %d: %w", r.read, r.h.Count, err)
	}
	r.read++
	return nil
}

// ValidateSet checks that headers form one complete corpus: contiguous
// firsts, matching totals, seeds, and shard counts. Headers must be in
// shard order.
func ValidateSet(hs []Header) error {
	if len(hs) == 0 {
		return fmt.Errorf("corpusfile: empty shard set")
	}
	next := 0
	for i, h := range hs {
		if err := h.validate(); err != nil {
			return err
		}
		if h.Shard != i || h.Shards != len(hs) {
			return fmt.Errorf("corpusfile: shard %d claims index %d of %d", i, h.Shard, h.Shards)
		}
		if h.Seed != hs[0].Seed || h.Total != hs[0].Total {
			return fmt.Errorf("corpusfile: shard %d provenance mismatch (seed %d total %d vs %d %d)",
				i, h.Seed, h.Total, hs[0].Seed, hs[0].Total)
		}
		if h.First != next {
			return fmt.Errorf("corpusfile: shard %d starts at %d, want %d", i, h.First, next)
		}
		next += h.Count
	}
	if next != hs[0].Total {
		return fmt.Errorf("corpusfile: shards hold %d records, header total says %d", next, hs[0].Total)
	}
	return nil
}
