package benchrun

import (
	"path/filepath"
	"strings"
	"testing"
)

func rep(ns float64, allocs int64, dilation float64) *Report {
	return &Report{
		Results: []Result{{
			Name:        "SummaryHeadline/par",
			NsPerOp:     ns,
			AllocsPerOp: allocs,
			Metrics:     map[string]float64{"dilation%": dilation},
		}},
	}
}

func TestCompare(t *testing.T) {
	base := rep(1000, 500, 0.3367)

	if p := Compare(base, rep(1100, 540, 0.3367), 0.20); len(p) != 0 {
		t.Fatalf("within tolerance flagged: %v", p)
	}
	if p := Compare(base, rep(900, 100, 0.3367), 0.20); len(p) != 0 {
		t.Fatalf("improvement flagged: %v", p)
	}
	if p := Compare(base, rep(1300, 500, 0.3367), 0.20); len(p) != 1 || !strings.Contains(p[0], "ns/op") {
		t.Fatalf("ns/op regression not flagged: %v", p)
	}
	if p := Compare(base, rep(1000, 700, 0.3367), 0.20); len(p) != 1 || !strings.Contains(p[0], "allocs/op") {
		t.Fatalf("allocs/op regression not flagged: %v", p)
	}
	// Quality metrics are exact: even a tiny drift is a failure.
	if p := Compare(base, rep(1000, 500, 0.33671), 0.20); len(p) != 1 || !strings.Contains(p[0], "bit-identical") {
		t.Fatalf("quality drift not flagged: %v", p)
	}
	// Disappearing benchmarks fail in both directions.
	empty := &Report{}
	if p := Compare(base, empty, 0.20); len(p) != 1 {
		t.Fatalf("missing current not flagged: %v", p)
	}
	if p := Compare(empty, base, 0.20); len(p) != 1 {
		t.Fatalf("missing baseline not flagged: %v", p)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := rep(1234, 42, 0.5)
	want.GoVersion, want.Workers = "go-test", 4
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p := Compare(want, got, 0); len(p) != 0 {
		t.Fatalf("round trip drifted: %v", p)
	}
	if got.GoVersion != "go-test" || got.Workers != 4 {
		t.Fatalf("environment fields lost: %+v", got)
	}
}
