package ir

import (
	"fmt"

	"modsched/internal/machine"
)

// DelayModel selects which column of Table 1 is used when converting a
// dependence edge into a minimum issue-time separation.
type DelayModel int

const (
	// VLIWDelays is the classical VLIW model with non-unit architectural
	// latencies: anti- and output-dependence delays may be negative when
	// the successor's latency is large.
	VLIWDelays DelayModel = iota
	// ConservativeDelays assumes only that the successor's latency is at
	// least 1, appropriate for superscalar processors (the "Conservative
	// Delay" column of Table 1).
	ConservativeDelays
)

func (m DelayModel) String() string {
	switch m {
	case VLIWDelays:
		return "vliw"
	case ConservativeDelays:
		return "conservative"
	default:
		return fmt.Sprintf("DelayModel(%d)", int(m))
	}
}

// EdgeDelay computes the Table 1 delay for a dependence of kind k between
// a predecessor with latency predLat and a successor with latency succLat.
//
//	Flow:    Latency(pred)                      (both models)
//	Anti:    1 - Latency(succ)   | conservative: 0
//	Output:  1 + Latency(pred) - Latency(succ)  | conservative: Latency(pred)
//	Control: Latency(pred)  (START/STOP bracketing and explicit ordering)
//	Mem:     1               (strict memory ordering; override per edge)
func EdgeDelay(k DepKind, predLat, succLat int, model DelayModel) int {
	switch k {
	case Flow, Control:
		return predLat
	case Anti:
		if model == ConservativeDelays {
			return 0
		}
		return 1 - succLat
	case Output:
		if model == ConservativeDelays {
			return predLat
		}
		return 1 + predLat - succLat
	case Mem:
		return 1
	default:
		panic(fmt.Sprintf("ir: unknown dependence kind %d", int(k)))
	}
}

// Delays computes the per-edge delays for a loop against a machine under
// the given delay model. The result is indexed like loop.Edges. Edges with
// a DelayOverride use the override verbatim.
func Delays(l *Loop, m *machine.Machine, model DelayModel) ([]int, error) {
	lat := make([]int, len(l.Ops))
	for i, op := range l.Ops {
		oc, ok := m.Opcode(op.Opcode)
		if !ok {
			return nil, fmt.Errorf("ir: loop %s op %d: machine %s has no opcode %q",
				l.Name, i, m.Name, op.Opcode)
		}
		lat[i] = oc.Latency
	}
	out := make([]int, len(l.Edges))
	for ei, e := range l.Edges {
		if e.DelayOverride != nil {
			out[ei] = *e.DelayOverride
			continue
		}
		out[ei] = EdgeDelay(e.Kind, lat[e.From], lat[e.To], model)
	}
	return out, nil
}
