// Package scherr defines the sentinel errors shared across the compilation
// pipeline. They live in a leaf package so that the parser, the MII
// analysis, and the scheduler can all classify failures consistently
// without import cycles; the root modsched package re-exports them.
//
// Every failure returned by an exported entry point wraps exactly the
// sentinels that describe it, so callers dispatch with errors.Is:
//
//	ErrNoSchedule      — no legal schedule exists within the search bounds
//	                     (MaxII exhausted, or the dependence graph admits no
//	                     schedule at any II).
//	ErrBudgetExhausted — at least one candidate II was abandoned because the
//	                     scheduling-step budget ran out (accompanies
//	                     ErrNoSchedule; raising BudgetRatio or MaxII may
//	                     still find a schedule).
//	ErrInvalidLoop     — the loop failed structural validation.
//	ErrInvalidMachine  — the machine description failed validation.
//	ErrInternal        — an internal invariant was violated (including
//	                     recovered panics); a bug in this package, never the
//	                     caller's input.
package scherr

import "errors"

var (
	// ErrNoSchedule reports that no legal schedule was found.
	ErrNoSchedule = errors.New("no schedule found")
	// ErrBudgetExhausted reports that the scheduling-step budget ran out.
	ErrBudgetExhausted = errors.New("scheduling budget exhausted")
	// ErrInvalidLoop reports a loop that failed validation.
	ErrInvalidLoop = errors.New("invalid loop")
	// ErrInvalidMachine reports a machine description that failed validation.
	ErrInvalidMachine = errors.New("invalid machine description")
	// ErrInternal reports a violated internal invariant (scheduler bug).
	ErrInternal = errors.New("internal scheduler error")
)
