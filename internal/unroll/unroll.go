// Package unroll implements the "unroll-before-scheduling" transformation
// the paper compares software pipelining against (Section 5): the loop
// body is replicated k times with registers renamed per copy and
// cross-iteration references retargeted between copies, and the result is
// scheduled with an ordinary acyclic scheduler. The back-edge remains a
// scheduling barrier, so the achievable throughput approaches the modulo
// scheduler's II only as k (and the code size) grows — the paper's
// argument that an unroll-based scheme must replicate more than ~118% of
// the body to compete.
package unroll

import (
	"fmt"

	"modsched/internal/ir"
)

// Unroll returns l replicated k times: one new loop whose single iteration
// performs k original iterations. Register v of copy c becomes a fresh
// register; a reference at original distance d from copy c resolves to
// copy (c-d) mod k at unrolled distance (d-c+c')/k. Profile weights are
// scaled so the execution-time metric stays comparable (LoopFreq is
// divided by k).
func Unroll(l *ir.Loop, k int) (*ir.Loop, error) {
	if k < 1 {
		return nil, fmt.Errorf("unroll: k=%d", k)
	}
	if k == 1 {
		return l.Clone(), nil
	}

	variant := l.VariantRegs()
	// Register mapping: (orig reg, copy) -> new reg. Invariants map to
	// themselves.
	var nextReg ir.Reg = 1
	for r := range variant {
		if r >= nextReg {
			nextReg = r + 1
		}
	}
	for _, op := range l.Ops {
		for _, r := range op.Srcs {
			if r >= nextReg {
				nextReg = r + 1
			}
		}
		if op.Pred >= nextReg {
			nextReg = op.Pred + 1
		}
	}
	regMap := make(map[[2]int]ir.Reg)
	mapReg := func(r ir.Reg, copy int) ir.Reg {
		if r == ir.NoReg || !variant[r] {
			return r
		}
		if copy == 0 {
			return r // copy 0 keeps original names
		}
		key := [2]int{int(r), copy}
		if nr, ok := regMap[key]; ok {
			return nr
		}
		nr := nextReg
		nextReg++
		regMap[key] = nr
		return nr
	}

	nReal := l.NumRealOps()
	out := &ir.Loop{
		Name:      fmt.Sprintf("%s.x%d", l.Name, k),
		EntryFreq: l.EntryFreq,
		LoopFreq:  l.LoopFreq / int64(k),
	}
	if out.LoopFreq < out.EntryFreq {
		out.LoopFreq = out.EntryFreq
	}

	// Operation index mapping: original real op o (1-based), copy c ->
	// 1 + c*nReal + (o-1).
	newID := func(o, c int) int { return 1 + c*nReal + (o - 1) }

	out.Ops = append(out.Ops, &ir.Operation{ID: 0, Opcode: "START"})
	for c := 0; c < k; c++ {
		for _, op := range l.RealOps() {
			no := &ir.Operation{
				ID:      newID(op.ID, c),
				Opcode:  op.Opcode,
				Dest:    mapReg(op.Dest, c),
				Imm:     op.Imm,
				Comment: op.Comment,
			}
			if op.Comment != "" {
				no.Comment = fmt.Sprintf("%s (copy %d)", op.Comment, c)
			}
			// Sources: original distance d from copy c reads copy
			// c' = (c-d) mod k at unrolled distance (d-c+c')/k.
			for si, r := range op.Srcs {
				d := 0
				if op.SrcDists != nil {
					d = op.SrcDists[si]
				}
				cp, nd := retarget(c, d, k)
				no.Srcs = append(no.Srcs, mapReg(r, cp))
				no.SrcDists = append(no.SrcDists, nd)
			}
			if op.Pred != ir.NoReg {
				cp, nd := retarget(c, op.PredDist, k)
				no.Pred = mapReg(op.Pred, cp)
				no.PredDist = nd
			}
			out.Ops = append(out.Ops, no)
		}
	}
	stop := &ir.Operation{ID: 1 + k*nReal, Opcode: "STOP"}
	out.Ops = append(out.Ops, stop)

	// START/STOP bracketing.
	for i := 1; i <= k*nReal; i++ {
		out.Edges = append(out.Edges, ir.Edge{From: 0, To: i, Kind: ir.Control})
		out.Edges = append(out.Edges, ir.Edge{From: i, To: stop.ID, Kind: ir.Control})
	}
	// Replicate the dependence edges between copies.
	for _, e := range l.Edges {
		if e.From == l.Start() || e.To == l.Stop() || e.To == l.Start() || e.From == l.Stop() {
			continue
		}
		for c := 0; c < k; c++ {
			cp, nd := retarget(c, e.Distance, k)
			ne := ir.Edge{
				From:     newID(e.From, cp),
				To:       newID(e.To, c),
				Kind:     e.Kind,
				Distance: nd,
			}
			if e.DelayOverride != nil {
				v := *e.DelayOverride
				ne.DelayOverride = &v
			}
			out.Edges = append(out.Edges, ne)
		}
	}
	return out, out.Validate(nil)
}

// retarget computes, for a reference at original distance d made by copy
// c, the producing copy and the distance in unrolled iterations.
func retarget(c, d, k int) (copy, dist int) {
	cp := (c - d) % k
	if cp < 0 {
		cp += k
	}
	return cp, (d - c + cp) / k
}
