package core

import (
	"testing"

	"modsched/internal/ir"
	"modsched/internal/machine"
)

func TestMRTPlaceRemoveRoundTrip(t *testing.T) {
	m := newMRT(4, 3)
	tab := machine.MustTable(
		machine.ResourceUse{Resource: 0, Time: 0},
		machine.ResourceUse{Resource: 1, Time: 2},
		machine.ResourceUse{Resource: 2, Time: 5}, // wraps to slot 1
	)
	if !m.fits(0, tab) {
		t.Fatal("empty MRT should fit")
	}
	m.place(7, 0, tab)
	if m.fits(4, tab) { // same table one II later collides with itself
		t.Error("modulo collision not detected")
	}
	if got := m.conflicts(4, tab); len(got) != 1 || got[0] != 7 {
		t.Errorf("conflicts = %v, want [7]", got)
	}
	m.remove(7, 0, tab)
	if !m.fits(4, tab) {
		t.Error("remove did not clear reservations")
	}
}

func TestMRTSelfCollisionDetected(t *testing.T) {
	m := newMRT(5, 2)
	gap := machine.MustTable(
		machine.ResourceUse{Resource: 0, Time: 0},
		machine.ResourceUse{Resource: 0, Time: 5}, // 5 mod 5 == 0: impossible at II=5
	)
	if m.selfConsistent(gap) {
		t.Error("self-collision at II=5 not detected")
	}
	if m.fits(0, gap) {
		t.Error("fits must reject self-colliding placement")
	}
	m6 := newMRT(6, 2)
	if !m6.selfConsistent(gap) {
		t.Error("gap table should be placeable at II=6")
	}
}

// TestSchedulerSkipsSelfCollidingII: a machine whose opcode reservation
// table cannot exist at some II (two uses of one resource congruent mod
// II) must make the scheduler bump the II rather than loop.
func TestSchedulerSkipsSelfCollidingII(t *testing.T) {
	m := machine.New("gapmachine")
	r0 := m.AddResource("unit")
	r1 := m.AddResource("other")
	m.MustAddOpcode(&machine.Opcode{Name: "gap", Latency: 6, Alternatives: []machine.Alternative{{
		Name: "u",
		Table: machine.MustTable(
			machine.ResourceUse{Resource: r0, Time: 0},
			machine.ResourceUse{Resource: r0, Time: 5},
		),
	}}})
	m.MustAddOpcode(&machine.Opcode{Name: "use5", Latency: 5, Alternatives: []machine.Alternative{{
		Name: "o", Table: machine.BlockTable(r1, 5),
	}}})
	m.MustAddOpcode(&machine.Opcode{Name: "START", Latency: 0,
		Alternatives: []machine.Alternative{{Name: "none"}}})
	m.MustAddOpcode(&machine.Opcode{Name: "STOP", Latency: 0,
		Alternatives: []machine.Alternative{{Name: "none"}}})

	b := ir.NewBuilder("gaploop", m)
	b.Define("gap", b.Invariant("a"))
	b.Define("use5", b.Invariant("a")) // forces ResMII = 5
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ModuloSchedule(l, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// MII = 5 but the gap table self-collides at II=5 (5 mod 5 == 0), so
	// the scheduler must deliver II=6.
	if s.MII != 5 {
		t.Fatalf("MII = %d, want 5", s.MII)
	}
	if s.II != 6 {
		t.Errorf("II = %d, want 6 (5 is structurally impossible)", s.II)
	}
}

// TestForcedEvictionForwardProgress: engineered contention where forced
// placement must displace and the prev+1 rule must prevent ping-ponging.
func TestForcedEvictionForwardProgress(t *testing.T) {
	m := machine.Cydra5()
	// Saturate the source buses: II == number of adder/multiplier ops, so
	// the last ops placed must evict.
	l := build(t, m, func(b *ir.Builder) {
		a := b.Invariant("a")
		var vals []ir.Value
		for i := 0; i < 5; i++ {
			vals = append(vals, b.Define("fadd", a, a))
			vals = append(vals, b.Define("fmul", a, a))
		}
		// Chain a few to create ordering pressure.
		b.Define("fadd", vals[0], vals[9])
		b.Effect("brtop")
	})
	opts := DefaultOptions()
	opts.BudgetRatio = 6
	s, err := ModuloSchedule(l, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(s); err != nil {
		t.Fatal(err)
	}
	if s.Stats.Unschedules == 0 {
		t.Log("note: no evictions were needed (machine had enough slack)")
	}
}
