package vliw

import (
	"testing"

	"modsched/internal/codegen"
	"modsched/internal/core"
	"modsched/internal/ir"
	"modsched/internal/machine"
)

// buildWhileCopy builds a do-while loop: copy x[i] to out[i] and continue
// while x[i] < limit. The continue value feeds the brtop; the store is
// predicated on the valid chain (product of all previous continues) so
// speculative iterations beyond the exit cannot write memory.
func buildWhileCopy(t testing.TB, m *machine.Machine) (*ir.Loop, *ir.Builder, ir.Value, ir.Value, ir.Value, ir.Value) {
	t.Helper()
	b := ir.NewBuilder("whilecopy", m)
	xi := b.Future()
	b.DefineAsImm(xi, "aadd", 8, xi.Back(1))
	x := b.Define("load", xi)
	cont := b.Future()
	b.DefineAs(cont, "cmp", x, b.Invariant("limit"))
	valid := b.Future()
	b.DefineAs(valid, "mul", valid.Back(1), cont.Back(1))
	b.Comment("valid chain: all previous continues")
	si := b.Future()
	b.DefineAsImm(si, "aadd", 8, si.Back(1))
	b.SetPred(valid)
	b.Effect("store", si, x)
	b.ClearPred()
	b.Effect("brtop", cont)
	b.Comment("while-loop branch consumes the continue value")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return l, b, xi, si, cont, valid
}

func TestWhileLoopKernel(t *testing.T) {
	for _, m := range machinesUnderTest() {
		l, b, xi, si, cont, valid := buildWhileCopy(t, m)

		// Data: values below 50 until index exitAt, then a sentinel.
		const exitAt = 17
		mem := map[int64]Word{}
		for i := int64(0); i < 60; i++ {
			v := Word(i % 40)
			if i == exitAt {
				v = 99 // >= limit: the loop exits after this iteration
			}
			mem[4000+8*(i+1)] = v
		}
		spec := RunSpec{
			Init: map[ir.Reg]Word{
				b.RegOf(xi): 4000, b.RegOf(si): 20000,
				b.RegOf(b.Invariant("limit")): 50,
				b.RegOf(cont):                 1,
				b.RegOf(valid):                1,
			},
			Mem: mem,
		}

		// Reference: the loop body runs exitAt+1 times (do-while).
		refSpec := spec
		refSpec.Trips = exitAt + 1
		ref, err := RunReference(l, refSpec)
		if err != nil {
			t.Fatal(err)
		}

		sched, err := core.ModuloSchedule(l, m, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		k, err := codegen.GenerateKernel(sched)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunKernelWhile(k, m, spec, 1000)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}

		// Memory: exactly the exitAt+1 copied elements, nothing else.
		for i := int64(0); i <= exitAt; i++ {
			a := int64(20000 + 8*(i+1))
			if got.Mem[a] != ref.Mem[a] {
				t.Errorf("%s: out[%d] = %v, want %v", m.Name, i, got.Mem[a], ref.Mem[a])
			}
		}
		for a := range got.Mem {
			if a >= 20000 && a <= 20000+8*60 {
				if _, ok := ref.Mem[a]; !ok {
					t.Errorf("%s: speculative store leaked to out[%d] = %v", m.Name, (a-20000)/8-1, got.Mem[a])
				}
			}
		}
	}
}

func TestWhileLoopExitOnFirstIteration(t *testing.T) {
	m := machine.Cydra5()
	l, b, xi, si, cont, valid := buildWhileCopy(t, m)
	mem := map[int64]Word{4008: 99} // first element already >= limit
	for i := int64(1); i < 40; i++ {
		mem[4000+8*(i+1)] = 1
	}
	spec := RunSpec{
		Init: map[ir.Reg]Word{
			b.RegOf(xi): 4000, b.RegOf(si): 20000,
			b.RegOf(b.Invariant("limit")): 50,
			b.RegOf(cont):                 1,
			b.RegOf(valid):                1,
		},
		Mem: mem,
	}
	sched, err := core.ModuloSchedule(l, m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	k, err := codegen.GenerateKernel(sched)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunKernelWhile(k, m, spec, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mem[20008] != 99 {
		t.Errorf("out[0] = %v, want 99 (the exit iteration still stores)", got.Mem[20008])
	}
	for i := int64(1); i < 40; i++ {
		if v, ok := got.Mem[20000+8*(i+1)]; ok && v != 0 {
			t.Errorf("speculative store at out[%d] = %v", i, v)
		}
	}
}

func TestWhileLoopGuards(t *testing.T) {
	m := machine.Cydra5()
	// A DO-loop kernel (no continue operand on brtop) must be rejected.
	b := ir.NewBuilder("doloop", m)
	xi := b.Future()
	b.DefineAsImm(xi, "aadd", 8, xi.Back(1))
	b.Define("load", xi)
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.ModuloSchedule(l, m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	k, err := codegen.GenerateKernel(sched)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunKernelWhile(k, m, RunSpec{Init: map[ir.Reg]Word{}}, 100); err == nil {
		t.Error("brtop without a continue operand accepted")
	}
}

func TestWhileLoopRunawayBounded(t *testing.T) {
	m := machine.Cydra5()
	l, b, xi, si, cont, valid := buildWhileCopy(t, m)
	mem := map[int64]Word{}
	for i := int64(0); i < 200; i++ {
		mem[4000+8*(i+1)] = 1 // never reaches the limit
	}
	spec := RunSpec{
		Init: map[ir.Reg]Word{
			b.RegOf(xi): 4000, b.RegOf(si): 20000,
			b.RegOf(b.Invariant("limit")): 50,
			b.RegOf(cont):                 1,
			b.RegOf(valid):                1,
		},
		Mem: mem,
	}
	sched, err := core.ModuloSchedule(l, m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	k, err := codegen.GenerateKernel(sched)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunKernelWhile(k, m, spec, 50); err == nil {
		t.Error("runaway while-loop not bounded by maxTrips")
	}
}
