package loopgen

import (
	"testing"

	"modsched/internal/looplang"
	"modsched/internal/machine"
)

func TestGenerationDeterministic(t *testing.T) {
	m := machine.Cydra5()
	cfg := DefaultConfig()
	cfg.N = 50
	a, err := Generate(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].NumRealOps() != b[i].NumRealOps() || len(a[i].Edges) != len(b[i].Edges) {
			t.Fatalf("loop %d differs across runs with the same seed", i)
		}
		if a[i].LoopFreq != b[i].LoopFreq {
			t.Fatalf("loop %d profile differs across runs", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	m := machine.Cydra5()
	cfg := DefaultConfig()
	cfg.N = 30
	a, _ := Generate(cfg, m)
	cfg.Seed = 999
	b, _ := Generate(cfg, m)
	same := 0
	for i := range a {
		if a[i].NumRealOps() == b[i].NumRealOps() {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced structurally identical corpora")
	}
}

func TestConfigDefaults(t *testing.T) {
	var zero Config
	c := zero.withDefaults()
	d := DefaultConfig()
	if c.N != d.N || c.Seed != d.Seed || c.MedianOps != d.MedianOps {
		t.Errorf("withDefaults() != DefaultConfig(): %+v vs %+v", c, d)
	}
}

func TestSizesWithinBounds(t *testing.T) {
	m := machine.Cydra5()
	cfg := DefaultConfig()
	cfg.N = 300
	loops, err := Generate(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range loops {
		n := l.NumRealOps()
		if n < cfg.MinOps {
			t.Errorf("%s: %d ops below MinOps %d", l.Name, n, cfg.MinOps)
		}
		// Generators may overshoot the clamp by the trailing
		// branch/store/alias ops, but not wildly.
		if n > cfg.MaxOps+8 {
			t.Errorf("%s: %d ops far above MaxOps %d", l.Name, n, cfg.MaxOps)
		}
	}
}

func TestProfilesPlausible(t *testing.T) {
	m := machine.Cydra5()
	cfg := DefaultConfig()
	cfg.N = 400
	loops, err := Generate(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	executed := 0
	for _, l := range loops {
		if l.LoopFreq < 0 || l.LoopFreq < l.EntryFreq {
			t.Fatalf("%s: bad profile %d/%d", l.Name, l.EntryFreq, l.LoopFreq)
		}
		if l.LoopFreq > 0 {
			executed++
		}
	}
	frac := float64(executed) / float64(len(loops))
	// The paper: only 597/1327 (45%) of loops execute under the profile.
	if frac < 0.30 || frac > 0.60 {
		t.Errorf("executed fraction %.2f outside [0.30, 0.60] (paper 0.45)", frac)
	}
}

// TestCorpusRoundTripsThroughLoopLang: every generated loop can be
// printed in the textual format and re-parsed into an equivalent loop —
// the corpusgen -> msched workflow.
func TestCorpusRoundTripsThroughLoopLang(t *testing.T) {
	m := machine.Cydra5()
	cfg := DefaultConfig()
	cfg.N = 60
	loops, err := Generate(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range loops {
		text := looplang.Print(l)
		l2, err := looplang.Parse(text, m)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", l.Name, err, text)
		}
		if l2.NumRealOps() != l.NumRealOps() {
			t.Fatalf("%s: ops %d -> %d", l.Name, l.NumRealOps(), l2.NumRealOps())
		}
		if len(l2.Edges) != len(l.Edges) {
			t.Fatalf("%s: edges %d -> %d\n%s", l.Name, len(l.Edges), len(l2.Edges), text)
		}
	}
}
