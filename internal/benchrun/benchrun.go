// Package benchrun runs the repository's headline benchmarks outside `go
// test` and serializes the results, so the same measurement code backs
// the `experiments -bench` emitter, the checked-in BENCH_PR4.json
// baseline, and the CI regression gate (cmd/benchgate). It reuses
// testing.Benchmark, so numbers are directly comparable with the
// bench_test.go suite.
package benchrun

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"slices"
	"sort"
	"testing"

	"modsched/internal/core"
	"modsched/internal/experiments"
	"modsched/internal/ir"
	"modsched/internal/kernels"
	"modsched/internal/loopgen"
	"modsched/internal/looplang"
	"modsched/internal/machine"
	"modsched/internal/mii"
	"modsched/internal/schedcache"
)

// Result is one benchmark's measurements. Metrics carries the custom
// schedule-quality metrics (deltaII/loop, dilation%, steps/op); these are
// deterministic functions of the seeded corpus, so the gate requires them
// to be exactly equal between baseline and current, while the timing
// numbers get a tolerance.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is a full benchmark run plus the environment it ran in.
//
// NumCPU records the physical CPU count and GOMAXPROCS the scheduler's
// actual concurrency bound; under cgroup CPU limits (a containerized
// daemon) the two disagree, and every worker-count default in this
// repository follows GOMAXPROCS (see experiments.DefaultWorkers). Both
// are recorded so a baseline measured on one topology is interpretable
// on another.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs,omitempty"`
	Workers    int      `json:"workers"`
	Results    []Result `json:"results"`
}

// corpusSize matches bench_test.go's benchCorpus, so ns/op here and there
// measure the same work.
const corpusSize = 200

// fig6Size bounds the sweep benchmark's sub-corpus: every loop is
// scheduled once per ratio, so the full corpus would dominate the run.
const fig6Size = 60

// fig6Ratios is a reduced ratio axis for the sweep benchmark (the knee
// at 2 plus the endpoints).
func fig6Ratios() []float64 { return []float64{1.0, 2.0, 4.0} }

func fromBenchmark(name string, r testing.BenchmarkResult) Result {
	out := Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if len(r.Extra) > 0 {
		out.Metrics = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			out.Metrics[k] = v
		}
	}
	return out
}

func reportQuality(b *testing.B, cr *experiments.CorpusResult) {
	var delta int64
	for _, r := range cr.Loops {
		delta += int64(r.II - r.MII)
	}
	b.ReportMetric(float64(delta)/float64(len(cr.Loops)), "deltaII/loop")
	b.ReportMetric(100*cr.AggregateDilation(), "dilation%")
	b.ReportMetric(cr.AggregateInefficiency(), "steps/op")
}

// Run executes the headline benchmarks: the Section 4.3/5 summary corpus
// run sequentially and on the worker pool (workers <= 0 means one per
// CPU), the Livermore suite compile, and the MII lower bounds.
func Run(workers int) (*Report, error) {
	if workers <= 0 {
		workers = experiments.DefaultWorkers()
	}
	rep := &Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}

	m := machine.Cydra5()
	loops, err := experiments.SmallCorpus(m, corpusSize)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	var benchErr error
	summary := func(name string, w int) {
		if benchErr != nil {
			return
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var cr *experiments.CorpusResult
			for i := 0; i < b.N; i++ {
				var err error
				cr, err = experiments.RunCorpusWorkers(ctx, loops, m, 2, false, w)
				if err != nil {
					benchErr = err
					b.FailNow()
				}
				_ = experiments.Summarize(cr)
			}
			reportQuality(b, cr)
		})
		rep.Results = append(rep.Results, fromBenchmark(name, r))
	}
	summary("SummaryHeadline/seq", 1)
	summary("SummaryHeadline/par", workers)
	if benchErr != nil {
		return nil, benchErr
	}

	// The cached variant shares one cache across iterations, so it
	// measures the steady state of a long-lived compile service: after
	// the first (untimed) pass every loop hits, and what remains is the
	// uncacheable part of the pipeline (key derivation, schedule copy,
	// bounds, MinSL) — the intra-corpus dedup of a cold cache is covered
	// by CacheTraffic below. Quality metrics come from the same
	// CorpusResult and must be bit-identical to /seq and /par.
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cache := schedcache.New(0)
		var cr *experiments.CorpusResult
		var err error
		if cr, err = experiments.RunCorpusCached(ctx, loops, m, 2, false, workers, cache); err != nil {
			benchErr = err
			b.FailNow()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cr, err = experiments.RunCorpusCached(ctx, loops, m, 2, false, workers, cache)
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			_ = experiments.Summarize(cr)
		}
		reportQuality(b, cr)
	})
	if benchErr != nil {
		return nil, benchErr
	}
	rep.Results = append(rep.Results, fromBenchmark("SummaryHeadline/cached", r))

	// Figure 6 sweep over a sub-corpus: the same loops scheduled at every
	// BudgetRatio, uncached vs cached (one cache across the whole sweep).
	fig6Loops := loops
	if len(fig6Loops) > fig6Size {
		fig6Loops = fig6Loops[:fig6Size]
	}
	fig6 := func(name string, cached bool) {
		if benchErr != nil {
			return
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			// One cache for the whole benchmark (steady state), same as
			// the summary benchmark above.
			var cache *schedcache.Cache
			if cached {
				cache = schedcache.New(0)
				if _, err := experiments.Fig6SweepCached(ctx, fig6Loops, m, fig6Ratios(), workers, cache); err != nil {
					benchErr = err
					b.FailNow()
				}
				b.ResetTimer()
			}
			var pts []experiments.Fig6Point
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = experiments.Fig6SweepCached(ctx, fig6Loops, m, fig6Ratios(), workers, cache)
				if err != nil {
					benchErr = err
					b.FailNow()
				}
			}
			b.ReportMetric(100*pts[1].Dilation, "dilation@2%")
			b.ReportMetric(pts[1].Inefficiency, "steps/op@2")
		})
		rep.Results = append(rep.Results, fromBenchmark(name, r))
	}
	fig6("Fig6Sweep/seq", false)
	fig6("Fig6Sweep/cached", true)
	if benchErr != nil {
		return nil, benchErr
	}

	ks, err := kernels.All(m)
	if err != nil {
		return nil, err
	}
	// The /scan line disables the compiled placement masks (Options.ScanMRT)
	// and times the reference use-by-use MRT scan over the same suite, so
	// the pair gates what the bit-packed reservation tables buy on the
	// findTimeSlot hot path. Schedules are bit-identical between the two
	// (pinned by core's differential battery); deltaII doubles as the
	// drift detector here.
	livermore := func(name string, scanMRT bool) {
		if benchErr != nil {
			return
		}
		opts := core.DefaultOptions()
		opts.ScanMRT = scanMRT
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var delta int64
			for i := 0; i < b.N; i++ {
				delta = 0
				for _, l := range ks {
					s, err := core.ModuloSchedule(l, m, opts)
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					delta += int64(s.II - s.MII)
				}
			}
			b.ReportMetric(float64(delta), "deltaII")
		})
		rep.Results = append(rep.Results, fromBenchmark(name, r))
	}
	livermore("ScheduleLivermore", false)
	livermore("ScheduleLivermore/scan", true)
	if benchErr != nil {
		return nil, benchErr
	}

	// Speculative II race over the Livermore suite: same schedules by
	// construction (the determinism suite pins that), different wall
	// clock. deltaII doubles as the drift detector here.
	specII := func(name string, w int) {
		if benchErr != nil {
			return
		}
		sopts := core.DefaultOptions()
		sopts.SearchWorkers = w
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var delta int64
			for i := 0; i < b.N; i++ {
				delta = 0
				for _, l := range ks {
					s, err := core.ModuloSchedule(l, m, sopts)
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					delta += int64(s.II - s.MII)
				}
			}
			b.ReportMetric(float64(delta), "deltaII")
		})
		rep.Results = append(rep.Results, fromBenchmark(name, r))
	}
	specII("SpeculativeII/w1", 1)
	specII("SpeculativeII/w4", 4)
	if benchErr != nil {
		return nil, benchErr
	}

	delays := make([][]int, len(loops))
	for i, l := range loops {
		d, err := ir.Delays(l, m, ir.VLIWDelays)
		if err != nil {
			return nil, err
		}
		delays[i] = d
	}
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, l := range loops {
				if _, err := mii.Compute(l, m, delays[j], nil); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		}
	})
	if benchErr != nil {
		return nil, benchErr
	}
	rep.Results = append(rep.Results, fromBenchmark("MII", r))

	// CacheTraffic is not a timing benchmark: it is the deterministic
	// hit/miss accounting of one cold-cache corpus run on one worker
	// (hit-vs-inflight attribution races under concurrency, and counts
	// accumulated across b.N iterations would depend on b.N). The gate
	// compares these exactly, so any change to the cache key or to the
	// corpus's structural-duplication profile shows up here.
	cache := schedcache.New(0)
	if _, err := experiments.RunCorpusCached(ctx, loops, m, 2, false, 1, cache); err != nil {
		return nil, err
	}
	st := cache.Stats()
	rep.Results = append(rep.Results, Result{
		Name:       "CacheTraffic",
		Iterations: 1,
		Metrics: map[string]float64{
			"hits":      float64(st.Hits),
			"misses":    float64(st.Misses),
			"evictions": float64(st.Evictions),
		},
	})

	if err := warmMissBench(ctx, m, rep); err != nil {
		return nil, err
	}
	if err := streamCorpusBench(ctx, m, workers, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// warmMissSize is the warm-start benchmark corpus; every loop gets one
// single-edit variant, so this is also the near-miss count per pass.
const warmMissSize = 100

// warmMissBench measures the warm-start delta path: a cache populated
// with a corpus, then the same corpus with one immediate edited per
// loop — every compile an exact-key miss with a distance-2 neighbor.
// The cold line compiles the variants from scratch; the warm line goes
// through the near-miss index and seeded probes. RestartOnFailure makes
// the cold II ladder climb (the shape of hard misses, where skipping
// matters); every warm schedule is asserted bit-identical to its cold
// one at runtime, and the effort metrics are deterministic (sequential
// compiles), so the gate compares them exactly.
func warmMissBench(ctx context.Context, m *machine.Machine, rep *Report) error {
	cfg := loopgen.Config{Seed: 80886, N: warmMissSize, MaxOps: 48}
	base, err := loopgen.Generate(cfg, m)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.BudgetRatio = 2
	opts.RestartOnFailure = true

	variants := make([]*ir.Loop, 0, len(base))
	for _, l := range base {
		v, err := looplang.Parse(looplang.Print(l), m)
		if err != nil {
			return err
		}
		for k := range v.Ops {
			if !v.Ops[k].IsPseudo() {
				v.Ops[k].Imm += 4096
				break
			}
		}
		v.Name += "~v"
		variants = append(variants, v)
	}

	// Cold reference schedules, also the warm assertion oracle.
	coldScheds := make([]*core.Schedule, len(variants))
	for i, v := range variants {
		if coldScheds[i], err = core.ModuloScheduleContext(ctx, v, m, opts); err != nil {
			return err
		}
	}

	var benchErr error
	perMiss := func(sum int64) float64 { return float64(sum) / float64(len(variants)) }

	compileWarm := func(cache *schedcache.Cache, l *ir.Loop) (*core.Schedule, error) {
		s, _, err := cache.DoWarm(l, m, opts, func(seed *core.WarmSeed) (*core.Schedule, *core.Degradation, error) {
			sched, cerr := core.ModuloScheduleWarmContext(ctx, l, m, opts, seed)
			return sched, nil, cerr
		})
		return s, err
	}
	// Both lines run the identical cache pipeline on the identical misses;
	// the only difference is the near-miss index, so ns/op isolates what
	// warm starting costs or saves end to end.
	runLine := func(name string, warm bool) Result {
		var ws schedcache.WarmStats
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var cnt core.Counters
			for i := 0; i < b.N; i++ {
				// A fresh populated cache per iteration so every variant is
				// a miss every time; population is untimed.
				b.StopTimer()
				cache := schedcache.New(0)
				if warm {
					cache.EnableWarmStart(0)
				}
				for _, l := range base {
					if _, err := compileWarm(cache, l); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
				b.StartTimer()
				cnt = core.Counters{}
				for k, v := range variants {
					s, err := compileWarm(cache, v)
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					cnt.Add(&s.Stats)
					cold := coldScheds[k]
					if s.II != cold.II || s.Length != cold.Length ||
						!slices.Equal(s.Times, cold.Times) || !slices.Equal(s.Alts, cold.Alts) {
						benchErr = fmt.Errorf("benchrun: %s schedule for %s differs from cold reference (II %d vs %d)",
							name, v.Name, s.II, cold.II)
						b.FailNow()
					}
				}
				b.StopTimer()
				ws = cache.WarmStats()
				b.StartTimer()
			}
			b.ReportMetric(perMiss(cnt.IIAttempts), "iiAttempts/miss")
			b.ReportMetric(perMiss(cnt.SchedSteps), "steps/miss")
			if warm {
				b.ReportMetric(float64(ws.NearHits), "nearHits")
				b.ReportMetric(float64(ws.SkippedII), "skippedII")
			}
		})
		return fromBenchmark(name, r)
	}
	coldRes := runLine("WarmMiss/cold", false)
	if benchErr != nil {
		return benchErr
	}
	warmRes := runLine("WarmMiss/warm", true)
	if benchErr != nil {
		return benchErr
	}
	rep.Results = append(rep.Results, coldRes, warmRes)

	// The point of the exercise: warm misses must do measurably less work
	// than cold ones. Fail the run outright if they do not, so a silent
	// regression cannot hide behind a refreshed baseline.
	if warmRes.Metrics["iiAttempts/miss"] >= coldRes.Metrics["iiAttempts/miss"] ||
		warmRes.Metrics["steps/miss"] >= coldRes.Metrics["steps/miss"] {
		return fmt.Errorf("benchrun: warm miss path does not beat cold: iiAttempts/miss %.3f vs %.3f, steps/miss %.1f vs %.1f",
			warmRes.Metrics["iiAttempts/miss"], coldRes.Metrics["iiAttempts/miss"],
			warmRes.Metrics["steps/miss"], coldRes.Metrics["steps/miss"])
	}
	return nil
}

// streamCorpusBench measures the sharded streaming pipeline end to end:
// read, parse, schedule, fold. Quality metrics come from the aggregate
// report and are byte-identical at any worker count; the warm line must
// produce the identical formatted report, asserted at runtime.
func streamCorpusBench(ctx context.Context, m *machine.Machine, workers int, rep *Report) error {
	dir, err := os.MkdirTemp("", "mscorp-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := loopgen.Config{Seed: 7171, N: 1000}
	paths, err := experiments.WriteShards(dir, cfg, m, 4)
	if err != nil {
		return err
	}

	var benchErr error
	var coldReport string
	run := func(name string, warm bool) Result {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var sr *experiments.StreamReport
			for i := 0; i < b.N; i++ {
				var cache *schedcache.Cache
				if warm {
					cache = schedcache.New(0)
					cache.EnableWarmStart(0)
				}
				var err error
				sr, err = experiments.RunCorpusStream(ctx, paths, m, 2, workers, cache)
				if err != nil {
					benchErr = err
					b.FailNow()
				}
			}
			text := experiments.FormatStream(sr)
			if warm && text != coldReport {
				benchErr = fmt.Errorf("benchrun: warm stream report differs from cold:\n%s\nvs\n%s", text, coldReport)
				b.FailNow()
			}
			if !warm {
				coldReport = text
			}
			b.ReportMetric(float64(sr.SumII-sr.SumMII)/float64(sr.Loops), "deltaII/loop")
			b.ReportMetric(float64(sr.ExecActual-sr.ExecBound)/float64(sr.ExecBound)*100, "dilation%")
		})
		return fromBenchmark(name, r)
	}
	cold := run("StreamCorpus/cold", false)
	if benchErr != nil {
		return benchErr
	}
	warm := run("StreamCorpus/warm", true)
	if benchErr != nil {
		return benchErr
	}
	rep.Results = append(rep.Results, cold, warm)
	return nil
}

// Format renders a report as the familiar `go test -bench` style lines.
func (rep *Report) Format() string {
	out := fmt.Sprintf("goos: %s goarch: %s cpus: %d gomaxprocs: %d workers: %d (%s)\n",
		rep.GOOS, rep.GOARCH, rep.NumCPU, rep.GOMAXPROCS, rep.Workers, rep.GoVersion)
	for _, r := range rep.Results {
		out += fmt.Sprintf("%-24s %10d iters %14.0f ns/op %10d B/op %8d allocs/op",
			r.Name, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out += fmt.Sprintf(" %12.5f %s", r.Metrics[k], k)
		}
		out += "\n"
	}
	return out
}
