package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"modsched/internal/jobs"
)

// newJobsServer builds a Server with the async jobs API mounted.
func newJobsServer(t *testing.T, cfg Config, jcfg JobsConfig) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if jcfg.Dir == "" {
		jcfg.Dir = t.TempDir()
	}
	if err := s.EnableJobs(jcfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.CloseJobs(ctx)
	})
	return s, ts
}

func getJSONBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// daxpyVariant produces structurally distinct (hence distinct-job-id)
// cheap loops by varying one address stride immediate.
func daxpyVariant(i int) string {
	return strings.Replace(daxpySource, "#8", fmt.Sprintf("#%d", 8+16*i), 1)
}

// submitJob posts one job and returns the decoded status response.
func submitJob(t *testing.T, url string, req JobSubmitRequest) (int, JobStatusResponse, http.Header) {
	t.Helper()
	status, body, hdr := postJSONBody(t, url+"/jobs", req)
	var st JobStatusResponse
	if status == http.StatusAccepted || status == http.StatusOK {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("submit response: %v: %s", err, body)
		}
	}
	return status, st, hdr
}

// waitJob long-polls until the job is terminal (looping over wait-cap
// returns if needed).
func waitJob(t *testing.T, url, id string) JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		status, body := getJSONBody(t, url+"/jobs/"+id+"/wait")
		if status != http.StatusOK {
			t.Fatalf("wait status %d: %s", status, body)
		}
		var st JobStatusResponse
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if jobs.Terminal(st.State) {
			return st
		}
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatusResponse{}
}

// outcomeParts splits a job outcome into its status and raw result /
// error bodies without re-encoding, so byte comparisons are honest.
func outcomeParts(t *testing.T, outcome json.RawMessage) (int, json.RawMessage, json.RawMessage) {
	t.Helper()
	var probe struct {
		Status int             `json:"status"`
		Result json.RawMessage `json:"result"`
		Error  json.RawMessage `json:"error"`
	}
	if err := json.Unmarshal(outcome, &probe); err != nil {
		t.Fatalf("outcome decode: %v: %s", err, outcome)
	}
	return probe.Status, probe.Result, probe.Error
}

// TestJobsByteIdenticalToCompile is the core contract: a completed
// job's outcome carries byte-for-byte the body the synchronous /compile
// endpoint returns for the same request — success and error cases both.
func TestJobsByteIdenticalToCompile(t *testing.T) {
	_, ts := newJobsServer(t, Config{}, JobsConfig{Workers: 2})

	cases := []struct {
		name      string
		req       CompileRequest
		wantState string
	}{
		{"ok", CompileRequest{Source: daxpySource}, jobs.StateDone},
		{"parse error", CompileRequest{Source: "loop x\nnonsense\n"}, jobs.StateFailed},
		{"impossible", CompileRequest{Source: impossibleSource}, jobs.StateFailed},
		{"unknown machine", CompileRequest{Source: daxpySource, Machine: "pdp11"}, jobs.StateFailed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, st, _ := submitJob(t, ts.URL, JobSubmitRequest{Tenant: "t1", Request: tc.req})
			if status != http.StatusAccepted {
				t.Fatalf("submit status %d", status)
			}
			fin := waitJob(t, ts.URL, st.ID)
			if fin.State != tc.wantState {
				t.Fatalf("state %q, want %q (outcome %s)", fin.State, tc.wantState, fin.Outcome)
			}
			jobStatus, jobResult, jobErr := outcomeParts(t, fin.Outcome)

			syncStatus, syncBody, _ := postJSONBody(t, ts.URL+"/compile", tc.req)
			syncBody = bytes.TrimSuffix(syncBody, []byte("\n"))
			if jobStatus != syncStatus {
				t.Fatalf("job outcome status %d, /compile %d", jobStatus, syncStatus)
			}
			if tc.wantState == jobs.StateDone {
				if !bytes.Equal(jobResult, syncBody) {
					t.Fatalf("result bytes differ:\njob:  %s\nsync: %s", jobResult, syncBody)
				}
			} else {
				if !bytes.Equal(jobErr, syncBody) {
					t.Fatalf("error bytes differ:\njob:  %s\nsync: %s", jobErr, syncBody)
				}
			}
		})
	}
}

// TestJobsIdempotentSubmit: resubmitting the same request is answered
// by the same job (200, same id, eventually the same outcome), and only
// one journal append happens.
func TestJobsIdempotentSubmit(t *testing.T) {
	s, ts := newJobsServer(t, Config{}, JobsConfig{Workers: 1})
	req := JobSubmitRequest{Tenant: "t1", Request: CompileRequest{Source: daxpySource}}

	status1, st1, _ := submitJob(t, ts.URL, req)
	if status1 != http.StatusAccepted {
		t.Fatalf("first submit: %d", status1)
	}
	status2, st2, _ := submitJob(t, ts.URL, req)
	if status2 != http.StatusOK || st2.ID != st1.ID {
		t.Fatalf("resubmit: status %d id %s (want 200, id %s)", status2, st2.ID, st1.ID)
	}
	// A different tenant gets a different job for the same source.
	_, st3, _ := submitJob(t, ts.URL, JobSubmitRequest{Tenant: "t2", Request: req.Request})
	if st3.ID == st1.ID {
		t.Fatal("tenants share a job id")
	}
	fin := waitJob(t, ts.URL, st1.ID)
	status4, st4, _ := submitJob(t, ts.URL, req)
	if status4 != http.StatusOK || !bytes.Equal(st4.Outcome, fin.Outcome) {
		t.Fatalf("post-completion resubmit: status %d, outcome drift", status4)
	}
	if c := s.JobsCounters(); c.Deduped != 2 {
		t.Fatalf("Deduped = %d, want 2", c.Deduped)
	}
	if js := s.JobsJournalStats(); js.Appends != 2 { // t1's job + t2's job
		t.Fatalf("journal appends = %d, want 2", js.Appends)
	}
}

// TestJobsQuota429: a rate-limited tenant's over-quota submission gets
// 429 kind "quota" with a Retry-After hint; other tenants are
// unaffected.
func TestJobsQuota429(t *testing.T) {
	_, ts := newJobsServer(t, Config{}, JobsConfig{
		Workers: 1,
		Tenants: map[string]jobs.TenantConfig{"limited": {Weight: 1, Rate: 0.001, Burst: 1}},
	})
	status, _, _ := submitJob(t, ts.URL, JobSubmitRequest{Tenant: "limited", Request: CompileRequest{Source: daxpyVariant(1)}})
	if status != http.StatusAccepted {
		t.Fatalf("first submit: %d", status)
	}
	status, body, hdr := postJSONBody(t, ts.URL+"/jobs", JobSubmitRequest{Tenant: "limited", Request: CompileRequest{Source: daxpyVariant(2)}})
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d, body %s", status, body)
	}
	var eresp ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Kind != KindQuota || hdr.Get("Retry-After") == "" || eresp.RetryAfterSec < 1 {
		t.Fatalf("quota refusal: kind %q, Retry-After %q, retry_after_sec %d", eresp.Kind, hdr.Get("Retry-After"), eresp.RetryAfterSec)
	}
	if status, _, _ := submitJob(t, ts.URL, JobSubmitRequest{Tenant: "other", Request: CompileRequest{Source: daxpyVariant(3)}}); status != http.StatusAccepted {
		t.Fatalf("unlimited tenant: %d", status)
	}
}

// TestJobsDeadlineExpiry: a queued job whose deadline passes before a
// worker frees up reaches "expired" with the 504 deadline outcome.
func TestJobsDeadlineExpiry(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newJobsServer(t, Config{}, JobsConfig{Workers: 1})
	s.testCompileHook = func(*CompileRequest) { <-gate }
	defer close(gate)

	// Occupy the lone worker.
	if status, _, _ := submitJob(t, ts.URL, JobSubmitRequest{Request: CompileRequest{Source: daxpyVariant(1)}}); status != http.StatusAccepted {
		t.Fatal("blocker not accepted")
	}
	_, st, _ := submitJob(t, ts.URL, JobSubmitRequest{Request: CompileRequest{Source: daxpyVariant(2)}, DeadlineMS: 1})
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, body := getJSONBody(t, ts.URL+"/jobs/"+st.ID)
		if status != http.StatusOK {
			t.Fatalf("get: %d %s", status, body)
		}
		var got JobStatusResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.State == jobs.StateExpired {
			jobStatus, _, jobErr := outcomeParts(t, got.Outcome)
			var eresp ErrorResponse
			if err := json.Unmarshal(jobErr, &eresp); err != nil {
				t.Fatal(err)
			}
			if jobStatus != http.StatusGatewayTimeout || eresp.Kind != KindDeadline {
				t.Fatalf("expired outcome: status %d kind %q", jobStatus, eresp.Kind)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never expired (state %q)", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobsNotFoundAndDisabled pins the 404 surface.
func TestJobsNotFoundAndDisabled(t *testing.T) {
	_, ts := newJobsServer(t, Config{}, JobsConfig{})
	bogus := strings.Repeat("ab", 32)
	for _, path := range []string{"/jobs/" + bogus, "/jobs/" + bogus + "/wait"} {
		status, body := getJSONBody(t, ts.URL+path)
		var eresp ErrorResponse
		if err := json.Unmarshal(body, &eresp); err != nil {
			t.Fatal(err)
		}
		if status != http.StatusNotFound || eresp.Kind != KindNotFound {
			t.Fatalf("%s: %d %q", path, status, eresp.Kind)
		}
	}
	// A server without EnableJobs refuses the whole surface with 404.
	_, plain := newTestServer(t, Config{})
	status, body, _ := postJSONBody(t, plain.URL+"/jobs", JobSubmitRequest{Request: CompileRequest{Source: daxpySource}})
	var eresp ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusNotFound || eresp.Kind != KindNotFound {
		t.Fatalf("disabled submit: %d %q", status, eresp.Kind)
	}
}

// TestJobsDrainRefusesSubmissions: during drain POST /jobs is 503
// draining with a Retry-After, while GET stays readable.
func TestJobsDrainRefusesSubmissions(t *testing.T) {
	s, ts := newJobsServer(t, Config{}, JobsConfig{Workers: 1})
	_, st, _ := submitJob(t, ts.URL, JobSubmitRequest{Request: CompileRequest{Source: daxpySource}})
	waitJob(t, ts.URL, st.ID)

	s.StartDrain()
	status, body, hdr := postJSONBody(t, ts.URL+"/jobs", JobSubmitRequest{Request: CompileRequest{Source: daxpyVariant(1)}})
	var eresp ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable || eresp.Kind != KindDraining || hdr.Get("Retry-After") == "" {
		t.Fatalf("drain submit: %d %q Retry-After %q", status, eresp.Kind, hdr.Get("Retry-After"))
	}
	// Polls still answer during drain.
	if status, _ := getJSONBody(t, ts.URL+"/jobs/"+st.ID); status != http.StatusOK {
		t.Fatalf("poll during drain: %d", status)
	}
	// The drain metrics dump carries the jobs gauges (the satellite-6
	// flush contract).
	text := s.MetricsText()
	for _, want := range []string{"mschedd_jobs_submitted_total 1", "mschedd_jobs_completed_total 1", "mschedd_jobs_queued 0", "mschedd_jobs_journal_records 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("drain metrics dump lacks %q", want)
		}
	}
}

// TestJobsCrashRecoveryChaos is the in-process half of the chaos
// acceptance criterion: kill the job subsystem mid-queue (simulated
// SIGKILL: in-flight completions dropped, journal untouched), restart
// over the same journal, and prove zero journaled jobs are lost and
// every outcome is byte-identical to a local compile on a fresh
// process.
func TestJobsCrashRecoveryChaos(t *testing.T) {
	dir := t.TempDir()

	srv1 := New(Config{})
	if err := srv1.EnableJobs(JobsConfig{Dir: dir, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	// A mixed population: successes, parse failures, proven-infeasible.
	type jobCase struct {
		id  string
		req CompileRequest
	}
	var cases []jobCase
	for i := 0; i < 24; i++ {
		var req CompileRequest
		switch i % 4 {
		case 0, 1:
			req = CompileRequest{Source: daxpyVariant(i)}
		case 2:
			req = CompileRequest{Source: fmt.Sprintf("loop bad%d\nnonsense\n", i)}
		case 3:
			// Pad with i independent ops: the loop name is not part of the
			// canonical structure, so variants must differ structurally to
			// get distinct job ids.
			var b strings.Builder
			fmt.Fprintf(&b, "loop impossible%d\n", i)
			for k := 0; k <= i; k++ {
				fmt.Fprintf(&b, "pad%d = add p\n", k)
			}
			b.WriteString("a: x = add p\nb: y = add x\nbrtop\n!mem b -> a dist 0\n")
			req = CompileRequest{Source: b.String()}
		}
		tenant := fmt.Sprintf("tenant%d", i%3)
		status, st, _ := submitJob(t, ts1.URL, JobSubmitRequest{Tenant: tenant, Request: req})
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, status)
		}
		cases = append(cases, jobCase{id: st.ID, req: req})
	}
	// Let a few finish, then die mid-queue.
	time.Sleep(5 * time.Millisecond)
	ts1.Close()
	srv1.jobs.Kill()

	// "Restart": a fresh server over the same journal directory.
	srv2 := New(Config{})
	if err := srv2.EnableJobs(JobsConfig{Dir: dir, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv2.CloseJobs(ctx)
	})
	c := srv2.JobsCounters()
	if c.Recovered != int64(len(cases)) {
		t.Fatalf("recovered %d of %d journaled jobs", c.Recovered, len(cases))
	}
	if js := srv2.JobsJournalStats(); js.Quarantined != 0 {
		t.Fatalf("%d journal files quarantined after clean kill", js.Quarantined)
	}

	// Every job must complete, and every outcome must match a reference
	// compile on a third, uninvolved process (byte-identical contract).
	oracle := New(Config{})
	for i, jc := range cases {
		fin := waitJob(t, ts2.URL, jc.id)
		if !jobs.Terminal(fin.State) {
			t.Fatalf("job %d not terminal after recovery: %q", i, fin.State)
		}
		want, err := json.Marshal(oracle.CompileLocal(context.Background(), &jc.req))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fin.Outcome, want) {
			t.Fatalf("job %d outcome diverged after crash recovery:\ngot:  %s\nwant: %s", i, fin.Outcome, want)
		}
	}
}

// TestJobsFairness10to1 is the fairness acceptance criterion in-process:
// a 10:1 bulk-vs-interactive backlog dispatched by weight must
// interleave so the interactive tenant's jobs are never stuck behind
// the bulk queue — asserted on dispatch sequence numbers, which are
// deterministic, rather than wall-clock latency.
func TestJobsFairness10to1(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newJobsServer(t, Config{}, JobsConfig{
		Workers: 1,
		Tenants: map[string]jobs.TenantConfig{
			"bulk":        {Weight: 1},
			"interactive": {Weight: 10},
		},
	})
	s.testCompileHook = func(*CompileRequest) {
		select {
		case <-gate:
		case <-time.After(30 * time.Second):
		}
	}

	// 10:1 job mix: 100 bulk, 10 interactive, bulk submitted first so the
	// backlog is maximally adversarial. The gate holds the lone worker on
	// its first pick until everything is queued.
	var bulkIDs, intIDs []string
	for i := 0; i < 100; i++ {
		status, st, _ := submitJob(t, ts.URL, JobSubmitRequest{Tenant: "bulk", Request: CompileRequest{Source: daxpyVariant(i)}})
		if status != http.StatusAccepted {
			t.Fatalf("bulk %d: %d", i, status)
		}
		bulkIDs = append(bulkIDs, st.ID)
	}
	for i := 0; i < 10; i++ {
		status, st, _ := submitJob(t, ts.URL, JobSubmitRequest{Tenant: "interactive", Request: CompileRequest{Source: daxpyVariant(200 + i)}})
		if status != http.StatusAccepted {
			t.Fatalf("interactive %d: %d", i, status)
		}
		intIDs = append(intIDs, st.ID)
	}
	close(gate)
	for _, id := range append(append([]string(nil), bulkIDs...), intIDs...) {
		waitJob(t, ts.URL, id)
	}

	var maxInt int64
	for _, id := range intIDs {
		if seq := s.jobs.DispatchSeq(id); seq > maxInt {
			maxInt = seq
		}
	}
	total := int64(len(bulkIDs) + len(intIDs))
	// With weight 10 vs 1, the 10 interactive jobs should all dispatch
	// within the first ~13 slots (one bulk pre-gate pick + ties). Allow
	// slack but pin the order of magnitude: all interactive work done
	// inside the first fifth of the dispatch sequence, i.e. its
	// completion P99 is bounded by the weights, not the bulk backlog.
	if maxInt == 0 || maxInt > total/5 {
		t.Fatalf("last interactive dispatch at seq %d of %d — bulk starved interactive", maxInt, total)
	}
	if d := s.jobs.TenantDispatched("interactive"); d != 10 {
		t.Fatalf("interactive dispatched %d, want 10", d)
	}
}
