package modsched_test

import (
	"testing"

	"modsched"
)

// TestPublicAPIPreprocessing drives the preprocessing surface: structured
// regions through IF-conversion, back-substitution, and the unroll
// baseline.
func TestPublicAPIPreprocessing(t *testing.T) {
	m := modsched.Cydra5()

	// IF-conversion.
	rgn := &modsched.Region{
		Name: "clip",
		Stmts: []modsched.Stmt{
			modsched.Assign{Dest: "xi", Opcode: "aadd", Srcs: []modsched.Ref{{Name: "xi", Back: 1}}, Imm: 8},
			modsched.Assign{Dest: "x", Opcode: "load", Srcs: []modsched.Ref{{Name: "xi"}}},
			modsched.Assign{Dest: "c", Opcode: "cmp", Srcs: []modsched.Ref{{Name: "x"}, {Name: "cap"}}},
			modsched.IfStmt{
				Cond: modsched.Ref{Name: "c"},
				Then: []modsched.Stmt{modsched.Assign{Dest: "y", Opcode: "copy", Srcs: []modsched.Ref{{Name: "x"}}}},
				Else: []modsched.Stmt{modsched.Assign{Dest: "y", Opcode: "copy", Srcs: []modsched.Ref{{Name: "cap"}}}},
			},
			modsched.Assign{Dest: "si", Opcode: "aadd", Srcs: []modsched.Ref{{Name: "si", Back: 1}}, Imm: 8},
			modsched.StoreStmt{Addr: modsched.Ref{Name: "si"}, Val: modsched.Ref{Name: "y"}},
		},
	}
	res, err := modsched.IfConvert(rgn, m)
	if err != nil {
		t.Fatal(err)
	}
	spec := modsched.RegionSpec{
		Vars:       map[string]float64{"xi": 1000, "si": 9000},
		Invariants: map[string]float64{"cap": 5},
		Mem:        map[int64]float64{1008: 3, 1016: 9},
		Trips:      2,
	}
	want, err := modsched.RunStructured(rgn, spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := modsched.RunReference(res.Loop, res.ToRunSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Mem[9008] != want.Mem[9008] || ref.Mem[9016] != want.Mem[9016] {
		t.Errorf("if-converted semantics differ: %v vs %v", ref.Mem, want.Mem)
	}

	// Back-substitution.
	l2, rewrites, err := modsched.BackSubstitute(res.Loop, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rewrites) == 0 {
		t.Error("no inductions rewritten")
	}
	if h := modsched.ExtendHist([]float64{100}, 8, 1, 3); h[2] != 84 {
		t.Errorf("ExtendHist = %v", h)
	}
	if _, err := modsched.Compile(l2, m, modsched.DefaultOptions()); err != nil {
		t.Fatal(err)
	}

	// Unroll baseline.
	u, err := modsched.UnrollLoop(res.Loop, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumRealOps() != 3*res.Loop.NumRealOps() {
		t.Errorf("unroll x3: %d ops, want %d", u.NumRealOps(), 3*res.Loop.NumRealOps())
	}
}

// TestPublicAPISlackAndWhile exercises the second algorithm and the
// while-loop simulator through the facade.
func TestPublicAPISlackAndWhile(t *testing.T) {
	m := modsched.Cydra5()

	b := modsched.NewBuilder("wl", m)
	xi := b.Future()
	b.DefineAsImm(xi, "aadd", 8, xi.Back(1))
	x := b.Define("load", xi)
	cont := b.Future()
	b.DefineAs(cont, "cmp", x, b.Invariant("limit"))
	valid := b.Future()
	b.DefineAs(valid, "mul", valid.Back(1), cont.Back(1))
	si := b.Future()
	b.DefineAsImm(si, "aadd", 8, si.Back(1))
	b.SetPred(valid)
	b.Effect("store", si, x)
	b.ClearPred()
	b.Effect("brtop", cont)
	loop, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	sched, err := modsched.CompileSlack(loop, m, modsched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := modsched.CheckSchedule(sched); err != nil {
		t.Fatal(err)
	}

	kern, err := modsched.GenerateKernel(sched)
	if err != nil {
		t.Fatal(err)
	}
	mem := map[int64]float64{}
	for i := int64(0); i < 30; i++ {
		v := float64(1)
		if i == 9 {
			v = 99
		}
		mem[4000+8*(i+1)] = v
	}
	spec := modsched.RunSpec{
		Init: map[modsched.Reg]float64{
			b.RegOf(xi): 4000, b.RegOf(si): 20000,
			b.RegOf(b.Invariant("limit")): 50,
			b.RegOf(cont):                 1,
			b.RegOf(valid):                1,
		},
		Mem: mem,
	}
	got, err := modsched.RunKernelWhile(kern, m, spec, 500)
	if err != nil {
		t.Fatal(err)
	}
	copied := 0
	for i := int64(0); i < 30; i++ {
		if _, ok := got.Mem[20000+8*(i+1)]; ok {
			copied++
		}
	}
	if copied != 10 {
		t.Errorf("copied %d elements, want 10 (exit at index 9, inclusive)", copied)
	}
}

// TestPublicAPIBoundsAndTables exercises remaining facade entry points.
func TestPublicAPIBoundsAndTables(t *testing.T) {
	if _, err := modsched.NewTable(modsched.ResourceUse{Resource: 0, Time: -1}); err == nil {
		t.Error("NewTable accepted a negative time")
	}
	tab := modsched.BlockTableFor(2, 3)
	if tab.Span() != 3 {
		t.Errorf("BlockTableFor span %d", tab.Span())
	}
	loops, err := modsched.PaperCorpus(modsched.Cydra5())
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1327 {
		t.Errorf("paper corpus has %d loops, want 1327", len(loops))
	}
}
