package core

import (
	"fmt"

	"modsched/internal/ir"
)

// Check verifies a Schedule against the definition of a legal modulo
// schedule: every operation placed at a non-negative time with a valid
// alternative, every dependence edge satisfied under the modulo timing
// rule, and no resource oversubscription when the schedule repeats every
// II cycles (verified by replaying all reservations into a fresh MRT).
// ModuloSchedule runs this on every schedule it returns; tests and the
// experiment harness also call it directly.
//
// The dependence rule is evaluated against delays recomputed here from
// the machine model (opcode latencies, the Table 1 formulas, and per-edge
// overrides) — never against the stored s.Delays vector alone. The stored
// vector must agree with the recomputation; a scheduler bug that writes
// stale or shrunken delays therefore cannot self-certify a schedule that
// only satisfies its own corrupted view of the timing constraints.
func Check(s *Schedule) error {
	l := s.Loop
	if s.II < 1 {
		return fmt.Errorf("check %s: II=%d < 1", l.Name, s.II)
	}
	if len(s.Times) != l.NumOps() || len(s.Alts) != l.NumOps() {
		return fmt.Errorf("check %s: times/alts length mismatch", l.Name)
	}
	if s.Times[l.Start()] != 0 {
		return fmt.Errorf("check %s: START scheduled at %d, want 0", l.Name, s.Times[l.Start()])
	}
	lat := make([]int, l.NumOps())
	for i, op := range l.Ops {
		if s.Times[i] < 0 {
			return fmt.Errorf("check %s: op %d (%s) unscheduled", l.Name, i, op.Opcode)
		}
		oc, ok := s.Machine.Opcode(op.Opcode)
		if !ok {
			return fmt.Errorf("check %s: op %d has unknown opcode %q", l.Name, i, op.Opcode)
		}
		if s.Alts[i] < 0 || s.Alts[i] >= len(oc.Alternatives) {
			return fmt.Errorf("check %s: op %d selects alternative %d of %d", l.Name, i, s.Alts[i], len(oc.Alternatives))
		}
		lat[i] = oc.Latency
	}
	if want := s.Times[l.Stop()]; s.Length != want {
		return fmt.Errorf("check %s: Length=%d but STOP at %d", l.Name, s.Length, want)
	}

	// Dependence constraints: t(to) >= t(from) + delay - II*distance, with
	// the delay recomputed from the machine model rather than trusted.
	if len(s.Delays) != len(l.Edges) {
		return fmt.Errorf("check %s: %d delays for %d edges", l.Name, len(s.Delays), len(l.Edges))
	}
	for ei, e := range l.Edges {
		delay := ir.EdgeDelay(e.Kind, lat[e.From], lat[e.To], s.Options.DelayModel)
		if e.DelayOverride != nil {
			delay = *e.DelayOverride
		}
		if s.Delays[ei] != delay {
			return fmt.Errorf("check %s: edge %d->%d (%s, dist %d) carries stale delay %d, machine model requires %d",
				l.Name, e.From, e.To, e.Kind, e.Distance, s.Delays[ei], delay)
		}
		lhs := s.Times[e.To]
		rhs := s.Times[e.From] + delay - s.II*e.Distance
		if lhs < rhs {
			return fmt.Errorf("check %s: edge %d->%d (%s, dist %d, delay %d) violated: t(%d)=%d < %d",
				l.Name, e.From, e.To, e.Kind, e.Distance, delay, e.To, lhs, rhs)
		}
	}

	// Modulo resource constraints: replay every reservation.
	replay := newMRT(s.II, s.Machine.NumResources())
	for i := range l.Ops {
		tab := s.ResourceTable(i)
		if !replay.fits(s.Times[i], tab) {
			return fmt.Errorf("check %s: op %d (%s) at t=%d oversubscribes a resource modulo II=%d",
				l.Name, i, l.Ops[i].Opcode, s.Times[i], s.II)
		}
		replay.place(i, s.Times[i], tab)
	}
	return nil
}
