package core

import (
	"fmt"

	"modsched/internal/machine"
)

// mrt is the modulo reservation table (Section 3.1): a schedule
// reservation table of exactly II rows. A reservation of resource R at
// absolute time T is recorded at ((T mod II), R); a conflict at T implies
// conflicts at all T + k*II, so II rows suffice.
type mrt struct {
	ii   int
	nres int
	// owner[(t%ii)*nres + r] is the op occupying the cell, or -1.
	owner []int
}

func newMRT(ii, nres int) *mrt {
	m := &mrt{}
	m.reset(ii, nres)
	return m
}

// reset re-dimensions the table for a new II attempt, reusing the owner
// buffer when it is large enough (the pooled-scratch fast path).
func (m *mrt) reset(ii, nres int) {
	m.ii, m.nres = ii, nres
	cells := ii * nres
	if cap(m.owner) < cells {
		m.owner = make([]int, cells)
	} else {
		m.owner = m.owner[:cells]
	}
	for i := range m.owner {
		m.owner[i] = -1
	}
}

func (m *mrt) cell(t int, r machine.Resource) int {
	tm := t % m.ii
	if tm < 0 {
		tm += m.ii
	}
	return tm*m.nres + int(r)
}

// fits reports whether the reservation table placed at time t collides
// with any existing reservation (including a self-collision, where two
// uses of the table land on the same cell — impossible to place at this
// II regardless of occupancy).
func (m *mrt) fits(t int, tab machine.ReservationTable) bool {
	for i, u := range tab.Uses {
		c := m.cell(t+u.Time, u.Resource)
		if m.owner[c] != -1 {
			return false
		}
		// Self-collision check against earlier uses of the same table.
		for j := 0; j < i; j++ {
			v := tab.Uses[j]
			if v.Resource == u.Resource && m.cell(t+v.Time, u.Resource) == c {
				return false
			}
		}
	}
	return true
}

// selfConsistent reports whether the table can ever be placed at this II:
// no two of its own uses of the same resource may fall on the same modulo
// cell.
func (m *mrt) selfConsistent(tab machine.ReservationTable) bool {
	for i, u := range tab.Uses {
		for j := 0; j < i; j++ {
			v := tab.Uses[j]
			if v.Resource == u.Resource && (u.Time-v.Time)%m.ii == 0 {
				return false
			}
		}
	}
	return true
}

// conflicts returns the distinct ops whose reservations collide with tab
// placed at t. This allocating version backs tests and states without a
// scratch; the scheduler's hot path uses state.conflictVictims.
func (m *mrt) conflicts(t int, tab machine.ReservationTable) []int {
	var out []int
	seen := map[int]bool{}
	for _, u := range tab.Uses {
		if o := m.owner[m.cell(t+u.Time, u.Resource)]; o != -1 && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// place records op's reservations; it must only be called when fits
// returned true. A double placement means the scheduling state is
// corrupted: the typed panic is recovered into an *InternalError at the
// API boundary (see runAttempt and RecoverToInternal) rather than being
// allowed to crash the caller.
func (m *mrt) place(op, t int, tab machine.ReservationTable) {
	for _, u := range tab.Uses {
		c := m.cell(t+u.Time, u.Resource)
		if m.owner[c] != -1 {
			panic(InvariantViolation(fmt.Sprintf(
				"core: MRT place over occupied cell: op %d at t=%d (resource %d, cell held by op %d, II=%d)",
				op, t, u.Resource, m.owner[c], m.ii)))
		}
		m.owner[c] = op
	}
}

// remove erases op's reservations (the reverse translation of place).
// Removing a reservation the op does not hold is the same class of
// corruption as a double place, and is contained the same way.
func (m *mrt) remove(op, t int, tab machine.ReservationTable) {
	for _, u := range tab.Uses {
		c := m.cell(t+u.Time, u.Resource)
		if m.owner[c] != op {
			panic(InvariantViolation(fmt.Sprintf(
				"core: MRT remove of foreign reservation: op %d at t=%d (resource %d, cell held by op %d, II=%d)",
				op, t, u.Resource, m.owner[c], m.ii)))
		}
		m.owner[c] = -1
	}
}
