// Whileloop: software-pipeline a WHILE-loop — trip count unknown at entry.
// New iterations issue speculatively every II cycles; the store is guarded
// by the continue chain so iterations past the exit leave no trace; the
// simulator squashes in-flight work when the branch resolves. This is the
// "loops with early exits" capability the paper's conclusion claims for
// modulo scheduling with predication and speculation.
//
//	i := 0
//	do { out[i] = x[i]; i++ } while x[i-1] < limit
package main

import (
	"fmt"
	"log"

	"modsched"
)

func main() {
	m := modsched.Cydra5()

	b := modsched.NewBuilder("whilecopy", m)
	xi := b.Future()
	b.DefineAsImm(xi, "aadd", 8, xi.Back(1))
	x := b.Define("load", xi)
	cont := b.Future()
	b.DefineAs(cont, "cmp", x, b.Invariant("limit"))
	valid := b.Future()
	b.DefineAs(valid, "mul", valid.Back(1), cont.Back(1))
	si := b.Future()
	b.DefineAsImm(si, "aadd", 8, si.Back(1))
	b.SetPred(valid)
	b.Effect("store", si, x)
	b.ClearPred()
	b.Effect("brtop", cont)
	loop, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	sched, err := modsched.Compile(loop, m, modsched.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("II=%d SL=%d stages=%d — up to %d iterations in flight, all but one speculative past the branch\n",
		sched.II, sched.Length, sched.StageCount(), sched.StageCount())

	kern, err := modsched.GenerateKernel(sched)
	if err != nil {
		log.Fatal(err)
	}

	// Data: ramp values; the loop exits at the first element >= 100.
	mem := map[int64]float64{}
	for i := int64(0); i < 100; i++ {
		mem[4000+8*(i+1)] = float64(i * 4)
	}
	spec := modsched.RunSpec{
		Init: map[modsched.Reg]float64{
			b.RegOf(xi): 4000, b.RegOf(si): 20000,
			b.RegOf(b.Invariant("limit")): 100,
			b.RegOf(cont):                 1,
			b.RegOf(valid):                1,
		},
		Mem: mem,
	}
	got, err := modsched.RunKernelWhile(kern, m, spec, 10000)
	if err != nil {
		log.Fatal(err)
	}

	copied := 0
	for i := int64(0); i < 100; i++ {
		if _, ok := got.Mem[20000+8*(i+1)]; ok {
			copied++
		}
	}
	fmt.Printf("copied %d elements in %d cycles (exit discovered mid-pipeline, speculative stores squashed)\n",
		copied, got.Cycles)
	if copied != 26 { // elements 0..25 (value 100 at index 25 is the exit iteration, still stored)
		log.Fatalf("expected 26 copied elements, got %d", copied)
	}
	fmt.Println("while-loop pipelining verified")
}
