// Command mschedfront fronts a fleet of mschedd replicas: it
// consistent-hashes each request's compile digest so every cache key
// has one home replica, health-checks the fleet and ejects the dead,
// retries transient failures with capped jittered backoff (honoring
// Retry-After), and hedges stragglers after a P99-derived delay. The
// bytes it serves are the replicas' bytes — the front never rewrites a
// response body. See docs/serving.md ("Topology & failure modes").
//
// The async jobs API routes the same way: POST /jobs is hashed by the
// job id the home replica will derive (so submission and every later
// GET /jobs/{id} or GET /jobs/{id}/wait land on the same replica), and
// a 404 from the home is double-checked against the rest of the fleet
// before being relayed, covering jobs that failed over during a health
// blip. Jobs forwards never hedge — a hedge win would journal the job
// where polls would not look.
//
//	mschedfront -replicas http://h1:8437,http://h2:8437 [-addr :8436]
//	            [-vnodes 64] [-health-interval 250ms] [-eject-after 3]
//	            [-readmit-after 2] [-max-attempts 4] [-backoff 10ms]
//	            [-backoff-cap 1s] [-hedge-delay 0] [-no-hedge]
//	            [-drain-timeout 30s]
//
// On SIGTERM or SIGINT the front drains exactly like a replica:
// /healthz flips to 503, new requests are refused with 503 + a
// Retry-After hint, in-flight forwards run to completion, the final
// /metrics exposition goes to stderr, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"modsched/internal/proxy"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the daemon behind an exit code so tests can drive it
// in-process: 0 after a clean drain, 2 for flag or listen errors, 1 for
// a serve failure or a forced shutdown.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mschedfront", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr           = fs.String("addr", ":8436", "listen address")
		replicas       = fs.String("replicas", "", "comma-separated mschedd base URLs (required)")
		vnodes         = fs.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = 64)")
		healthInterval = fs.Duration("health-interval", 0, "health probe period (0 = 250ms)")
		ejectAfter     = fs.Int("eject-after", 0, "consecutive failures that eject a replica (0 = 3)")
		readmitAfter   = fs.Int("readmit-after", 0, "consecutive good probes that readmit (0 = 2)")
		maxAttempts    = fs.Int("max-attempts", 0, "tries per request, first included (0 = 4)")
		backoff        = fs.Duration("backoff", 0, "base retry backoff, doubled per attempt with jitter (0 = 10ms)")
		backoffCap     = fs.Duration("backoff-cap", 0, "cap on one backoff sleep and on honored Retry-After (0 = 1s)")
		hedgeDelay     = fs.Duration("hedge-delay", 0, "fixed hedge delay (0 = derive from observed P99)")
		noHedge        = fs.Bool("no-hedge", false, "disable hedged requests")
		drainTimeout   = fs.Duration("drain-timeout", 30*time.Second, "longest to wait for in-flight requests on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "mschedfront: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(stderr, "mschedfront: -replicas is required")
		return 2
	}

	p, err := proxy.New(proxy.Config{
		Replicas:       urls,
		VirtualNodes:   *vnodes,
		HealthInterval: *healthInterval,
		EjectAfter:     *ejectAfter,
		ReadmitAfter:   *readmitAfter,
		MaxAttempts:    *maxAttempts,
		BackoffBase:    *backoff,
		BackoffCap:     *backoffCap,
		HedgeDelay:     *hedgeDelay,
		DisableHedge:   *noHedge,
	})
	if err != nil {
		fmt.Fprintf(stderr, "mschedfront: %v\n", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "mschedfront: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "mschedfront: listening on %s, %d replicas\n", ln.Addr(), len(urls))

	p.Start()
	defer p.Close()

	hs := &http.Server{
		Handler:           p.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "mschedfront: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stderr, "mschedfront: %v received, draining\n", s)
	}

	p.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig
		fmt.Fprintln(stderr, "mschedfront: second signal, aborting")
		cancel()
	}()
	code := 0
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "mschedfront: drain incomplete: %v\n", err)
		code = 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "mschedfront: %v\n", err)
		code = 1
	}
	fmt.Fprint(stderr, p.MetricsText())
	fmt.Fprintln(stderr, "mschedfront: drained")
	return code
}
