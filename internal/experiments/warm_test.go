package experiments

import (
	"context"
	"reflect"
	"testing"

	"modsched/internal/core"
	"modsched/internal/looplang"
	"modsched/internal/machine"
	"modsched/internal/schedcache"
)

// stripEffort zeroes the fields a warm start is allowed to change —
// total effort counters — leaving every quality field (II, SL, bounds,
// SCC structure, final-attempt steps) for exact comparison.
func stripEffort(r *CorpusResult) *CorpusResult {
	out := &CorpusResult{Machine: r.Machine, BudgetRatio: r.BudgetRatio, Loops: make([]LoopResult, len(r.Loops))}
	for i, lr := range r.Loops {
		lr.StepsTotal = 0
		lr.Counters = core.Counters{}
		out.Loops[i] = lr
	}
	return out
}

// TestRunCorpusWarmIdentical pins the warm-start quality contract at the
// corpus level: with the near-miss index enabled, a cached corpus run —
// including single-edit variants that miss the exact key and warm-start
// from their neighbors — produces quality results identical to a cold
// uncached run, at any worker count, under the race detector.
func TestRunCorpusWarmIdentical(t *testing.T) {
	m := machine.Cydra5()
	n := 40
	if testing.Short() {
		n = 15
	}
	loops, err := SmallCorpus(m, n)
	if err != nil {
		t.Fatal(err)
	}
	// Append single-edit variants of the first loops: same structure with
	// one immediate changed, so they miss the exact cache key but sit at
	// edit distance 2 from an indexed neighbor.
	nv := 10
	if nv > len(loops) {
		nv = len(loops)
	}
	for i := 0; i < nv; i++ {
		v, err := looplang.Parse(looplang.Print(loops[i]), m)
		if err != nil {
			t.Fatal(err)
		}
		mutated := false
		for k := range v.Ops {
			if !v.Ops[k].IsPseudo() {
				v.Ops[k].Imm += 7777
				mutated = true
				break
			}
		}
		if !mutated {
			continue
		}
		v.Name += "~variant"
		v.EntryFreq, v.LoopFreq = loops[i].EntryFreq, loops[i].LoopFreq
		loops = append(loops, v)
	}
	ctx := context.Background()

	cold, err := RunCorpusWorkers(ctx, loops, m, 2, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := stripEffort(cold)

	for _, workers := range []int{1, 4} {
		cache := schedcache.New(0)
		cache.EnableWarmStart(0)
		warm, err := RunCorpusCached(ctx, loops, m, 2, true, workers, cache)
		if err != nil {
			t.Fatal(err)
		}
		got := stripEffort(warm)
		if !reflect.DeepEqual(want, got) {
			for i := range want.Loops {
				if !reflect.DeepEqual(want.Loops[i], got.Loops[i]) {
					t.Fatalf("workers=%d: loop %s quality differs warm vs cold:\ncold: %+v\nwarm: %+v",
						workers, want.Loops[i].Name, want.Loops[i], got.Loops[i])
				}
			}
			t.Fatalf("workers=%d: corpus results differ outside Loops", workers)
		}
		// Sequential runs are deterministic: every variant compiles after
		// its base is cached, so the near index must have produced seeds.
		// (Seeds may still decline to start a warm search — under the
		// default options most corpus loops achieve II = MII, leaving
		// nothing to skip; seeded-search engagement is pinned by the core
		// and schedcache layers under the restart-on-failure profile.)
		if workers == 1 {
			st := cache.WarmStats()
			if st.NearHits == 0 {
				t.Fatalf("workers=1: no near hits over %d single-edit variants: %+v", nv, st)
			}
		}
	}
}
