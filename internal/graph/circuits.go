package graph

import "context"

// Elementary-circuit enumeration, used by the circuit-enumeration variant
// of the RecMII computation (the approach the Cydra 5 compiler took,
// Section 2.2) and as a cross-check for the MinDist-based computation.
//
// The implementation is Johnson's algorithm (1975), run independently on
// each strongly connected component. Enumeration is capped: dependence
// graphs can hold exponentially many circuits, and the cap keeps the
// cross-check usable on adversarial inputs.

// ErrTooManyCircuits is reported via the truncated flag of
// ElementaryCircuits when the cap is hit.

// ElementaryCircuits returns up to limit elementary circuits of g, each as
// a vertex sequence (the closing edge back to the first vertex is
// implied). Self-loops are returned as single-vertex circuits. The second
// result reports whether enumeration was truncated by the limit. A limit
// of 0 or less means no cap.
func (g *Graph) ElementaryCircuits(limit int) ([][]int, bool) {
	circuits, truncated, _ := g.ElementaryCircuitsContext(nil, limit)
	return circuits, truncated
}

// ElementaryCircuitsContext is ElementaryCircuits with cancellation:
// ctx.Err() is polled at every root vertex and at every emitted circuit,
// so a deadline interrupts even an exponential enumeration promptly. A
// nil ctx disables the checks. On cancellation the partial circuit list
// gathered so far is returned alongside the context's error.
func (g *Graph) ElementaryCircuitsContext(ctx context.Context, limit int) ([][]int, bool, error) {
	var (
		circuits  [][]int
		truncated bool
		ctxErr    error
	)
	canceled := func() bool {
		if ctx == nil || ctxErr != nil {
			return ctxErr != nil
		}
		ctxErr = ctx.Err()
		return ctxErr != nil
	}
	emit := func(c []int) bool {
		if canceled() {
			return false
		}
		if limit > 0 && len(circuits) >= limit {
			truncated = true
			return false
		}
		circuits = append(circuits, append([]int(nil), c...))
		return true
	}

	// Self-loops first (Johnson's algorithm as stated skips them).
	selfLoop := make([]bool, g.N)
	for v := 0; v < g.N; v++ {
		for _, w := range g.Adj[v] {
			if w == v && !selfLoop[v] {
				selfLoop[v] = true
				if !emit([]int{v}) {
					return circuits, truncated, ctxErr
				}
			}
		}
	}

	comps := g.SCCs()
	for _, comp := range comps {
		if len(comp) < 2 {
			continue
		}
		inComp := make(map[int]bool, len(comp))
		for _, v := range comp {
			inComp[v] = true
		}
		// Johnson's algorithm restricted to this component, rooted at each
		// vertex in turn; vertices less than the root are excluded to
		// avoid duplicates.
		for ri, root := range comp {
			if canceled() {
				return circuits, truncated, ctxErr
			}
			allowed := make(map[int]bool, len(comp)-ri)
			for _, v := range comp[ri:] {
				allowed[v] = true
			}
			j := &johnson{
				g:       g,
				root:    root,
				allowed: allowed,
				blocked: make(map[int]bool),
				blockB:  make(map[int]map[int]bool),
				emit:    emit,
			}
			j.circuit(root)
			if j.stop {
				if ctxErr != nil {
					return circuits, truncated, ctxErr
				}
				return circuits, true, nil
			}
		}
	}
	return circuits, truncated, ctxErr
}

type johnson struct {
	g       *Graph
	root    int
	allowed map[int]bool
	blocked map[int]bool
	blockB  map[int]map[int]bool
	stack   []int
	emit    func([]int) bool
	stop    bool
}

func (j *johnson) unblock(v int) {
	j.blocked[v] = false
	for w := range j.blockB[v] {
		if j.blockB[v][w] {
			j.blockB[v][w] = false
			if j.blocked[w] {
				j.unblock(w)
			}
		}
	}
}

func (j *johnson) circuit(v int) bool {
	if j.stop {
		return false
	}
	found := false
	j.stack = append(j.stack, v)
	j.blocked[v] = true
	seen := make(map[int]bool)
	for _, w := range j.g.Adj[v] {
		if !j.allowed[w] || seen[w] {
			continue
		}
		seen[w] = true // parallel edges yield the same vertex circuit once
		if w == j.root {
			if len(j.stack) > 1 || v != j.root { // skip pure self-loop (handled above)
				if !j.emit(j.stack) {
					j.stop = true
					break
				}
			}
			found = true
		} else if !j.blocked[w] {
			if j.circuit(w) {
				found = true
			}
			if j.stop {
				break
			}
		}
	}
	if found {
		j.unblock(v)
	} else {
		for _, w := range j.g.Adj[v] {
			if !j.allowed[w] {
				continue
			}
			if j.blockB[w] == nil {
				j.blockB[w] = make(map[int]bool)
			}
			j.blockB[w][v] = true
		}
	}
	j.stack = j.stack[:len(j.stack)-1]
	return found
}
