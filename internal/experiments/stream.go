package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"modsched/internal/core"
	"modsched/internal/corpusfile"
	"modsched/internal/ir"
	"modsched/internal/loopgen"
	"modsched/internal/looplang"
	"modsched/internal/machine"
	"modsched/internal/schedcache"
)

// StreamReport is the aggregate over a streamed sharded corpus. Unlike
// CorpusResult it holds no per-loop entries — memory stays bounded no
// matter how many loops stream through — and it carries only fields
// that are deterministic functions of the corpus content: quality
// numbers (II, SL, bounds, execution-time metric) and the final-attempt
// step count, which the warm-start contract leaves bit-identical to a
// cold compile. Total-effort counters (II attempts, all-attempt steps,
// warm counters) are deliberately excluded: with a warm cache they
// depend on which neighbor each miss saw, which under concurrency
// depends on completion order. What remains is byte-identical for any
// worker count and any warm/cold cache configuration — the streaming
// determinism test pins this.
type StreamReport struct {
	Machine     string
	BudgetRatio float64
	Shards      int
	Seed        int64
	// Loops is the record count; Ops/Edges sum the real operations and
	// the dependence edges between them.
	Loops, Ops, Edges int64
	// Quality sums and the II == MII achievement count.
	SumMII, SumII, SumSL, SumMinSL int64
	AtMII                          int64
	// SumStepsFinal sums the final (successful) attempt's scheduling
	// steps — the paper's "effort that mattered".
	SumStepsFinal int64
	// Execution-time metric (paper Section 4.3) at achieved (SL, II) and
	// at the lower bounds (MinSL, MII).
	ExecActual, ExecBound int64
}

func (r *StreamReport) fold(lr *LoopResult) {
	r.Loops++
	r.Ops += int64(lr.N)
	r.Edges += int64(lr.E)
	r.SumMII += int64(lr.MII)
	r.SumII += int64(lr.II)
	r.SumSL += int64(lr.SL)
	r.SumMinSL += int64(lr.MinSL)
	if lr.II == lr.MII {
		r.AtMII++
	}
	r.SumStepsFinal += lr.StepsFinal
	r.ExecActual += lr.ExecTimeActual()
	r.ExecBound += lr.ExecTimeBound()
}

func (r *StreamReport) merge(p *StreamReport) {
	r.Loops += p.Loops
	r.Ops += p.Ops
	r.Edges += p.Edges
	r.SumMII += p.SumMII
	r.SumII += p.SumII
	r.SumSL += p.SumSL
	r.SumMinSL += p.SumMinSL
	r.AtMII += p.AtMII
	r.SumStepsFinal += p.SumStepsFinal
	r.ExecActual += p.ExecActual
	r.ExecBound += p.ExecBound
}

// RunCorpusStream schedules every loop of a sharded corpus
// (internal/corpusfile, written by corpusgen -shards) and returns the
// aggregate report. Shards are processed in parallel — paths must be in
// shard order — with one partial report per shard, folded in shard
// order afterwards, so the report is byte-identical for any worker
// count. Within a shard, records stream through one at a time: peak
// memory is one loop (plus the optional cache) per worker, not the
// corpus. A non-nil cache memoizes compiles across duplicate structures
// and, if its warm-start index is enabled, warm-starts near misses.
func RunCorpusStream(ctx context.Context, paths []string, m *machine.Machine, budgetRatio float64, workers int, cache *schedcache.Cache) (*StreamReport, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("experiments: no corpus shards")
	}
	opts := core.DefaultOptions()
	opts.BudgetRatio = budgetRatio
	partials := make([]StreamReport, len(paths))
	headers := make([]corpusfile.Header, len(paths))
	err := ParallelFor(ctx, len(paths), workers, func(ctx context.Context, s int) error {
		h, err := streamShard(ctx, paths[s], m, opts, cache, &partials[s])
		if err != nil {
			return fmt.Errorf("experiments: shard %s: %w", paths[s], err)
		}
		headers[s] = h
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := corpusfile.ValidateSet(headers); err != nil {
		return nil, err
	}
	rep := &StreamReport{
		Machine:     m.Name,
		BudgetRatio: budgetRatio,
		Shards:      len(paths),
		Seed:        headers[0].Seed,
	}
	for i := range partials {
		rep.merge(&partials[i])
	}
	if rep.Loops != int64(headers[0].Total) {
		return nil, fmt.Errorf("experiments: scheduled %d loops, corpus total says %d", rep.Loops, headers[0].Total)
	}
	return rep, nil
}

// WriteShards streams a freshly generated synthetic corpus into dir as
// the canonical contiguous shard split (corpusgen -shards is a thin
// wrapper around this). Exactly one shard file is open at a time and
// loops are generated one by one, so writing a million-loop corpus
// needs memory for a single loop. Returns the shard paths in shard
// order. Record content depends only on (cfg.Seed, cfg.N), never on the
// shard count.
func WriteShards(dir string, cfg loopgen.Config, m *machine.Machine, shards int) ([]string, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("experiments: shard count %d", shards)
	}
	cfg = cfg.WithDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	counts := corpusfile.ShardCounts(cfg.N, shards)
	paths := make([]string, shards)
	var (
		w     *corpusfile.Writer
		f     *os.File
		shard = -1
		first = 0
		next  = 0 // records written into the current shard
	)
	closeCur := func() error {
		if w == nil {
			return nil
		}
		err := w.Close()
		w = nil
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	openNext := func() error {
		if shard >= 0 {
			first += counts[shard]
		}
		shard++
		next = 0
		var err error
		paths[shard] = filepath.Join(dir, corpusfile.ShardName(shard))
		if f, err = os.Create(paths[shard]); err != nil {
			return err
		}
		if w, err = corpusfile.NewWriter(f, corpusfile.Header{
			Shard: shard, Shards: shards, Seed: cfg.Seed,
			Count: counts[shard], First: first, Total: cfg.N,
		}); err != nil {
			f.Close()
			w = nil
			return err
		}
		return nil
	}
	err := loopgen.Stream(cfg, m, func(i int, l *ir.Loop) error {
		for w == nil || next == counts[shard] {
			if err := closeCur(); err != nil {
				return err
			}
			if err := openNext(); err != nil {
				return err
			}
		}
		next++
		return w.Add([]byte(looplang.Print(l)))
	})
	if err != nil {
		if w != nil {
			f.Close()
		}
		return nil, err
	}
	if err := closeCur(); err != nil {
		return nil, err
	}
	// Trailing empty shards, possible when shards > N.
	for shard < shards-1 {
		if err := openNext(); err != nil {
			return nil, err
		}
		if err := closeCur(); err != nil {
			return nil, err
		}
	}
	return paths, nil
}

func streamShard(ctx context.Context, path string, m *machine.Machine, opts core.Options, cache *schedcache.Cache, out *StreamReport) (corpusfile.Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return corpusfile.Header{}, err
	}
	defer f.Close()
	r, err := corpusfile.NewReader(f)
	if err != nil {
		return corpusfile.Header{}, err
	}
	for {
		rec, err := r.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			return r.Header(), err
		}
		l, err := looplang.Parse(string(rec), m)
		if err != nil {
			return r.Header(), fmt.Errorf("record %d: %w", out.Loops, err)
		}
		lr, err := runOne(ctx, l, m, opts, false, cache)
		if err != nil {
			return r.Header(), fmt.Errorf("loop %s: %w", l.Name, err)
		}
		out.fold(lr)
	}
	return r.Header(), nil
}

// FormatStream renders a stream report; every number is a deterministic
// function of the corpus content — the shard count is deliberately
// omitted — so two runs over the same corpus can be compared
// byte-for-byte regardless of worker count or sharding.
func FormatStream(r *StreamReport) string {
	f := func(sum int64) float64 { return float64(sum) / float64(r.Loops) }
	out := fmt.Sprintf("streamed corpus: %d loops (seed %d) on %s, BudgetRatio %g\n",
		r.Loops, r.Seed, r.Machine, r.BudgetRatio)
	out += fmt.Sprintf("  ops/loop %.4f  edges/loop %.4f\n", f(r.Ops), f(r.Edges))
	out += fmt.Sprintf("  mean MII %.4f  mean II %.4f  mean SL %.4f  mean MinSL %.4f\n",
		f(r.SumMII), f(r.SumII), f(r.SumSL), f(r.SumMinSL))
	out += fmt.Sprintf("  II == MII on %d/%d loops (%.2f%%)  deltaII/loop %.5f\n",
		r.AtMII, r.Loops, 100*float64(r.AtMII)/float64(r.Loops),
		float64(r.SumII-r.SumMII)/float64(r.Loops))
	out += fmt.Sprintf("  exec time: actual %d  bound %d  dilation %.5f\n",
		r.ExecActual, r.ExecBound,
		float64(r.ExecActual-r.ExecBound)/float64(r.ExecBound))
	out += fmt.Sprintf("  steps(final)/op %.5f\n", float64(r.SumStepsFinal)/float64(r.Ops))
	return out
}
