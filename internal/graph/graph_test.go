package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSCCsSimpleChain(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	comps := g.SCCs()
	if len(comps) != 4 {
		t.Fatalf("chain should have 4 singleton SCCs, got %d", len(comps))
	}
	// Reverse topological: sinks first.
	if comps[0][0] != 3 || comps[3][0] != 0 {
		t.Errorf("SCC emission order not reverse topological: %v", comps)
	}
}

func TestSCCsCycleAndTail(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 cycle, 2 -> 3 tail.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	comps := g.SCCs()
	if len(comps) != 2 {
		t.Fatalf("want 2 SCCs, got %v", comps)
	}
	sizes := []int{len(comps[0]), len(comps[1])}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 3 {
		t.Errorf("want sizes {1,3}, got %v", sizes)
	}
	// The singleton (3) is a sink, so it must be emitted first.
	if len(comps[0]) != 1 || comps[0][0] != 3 {
		t.Errorf("sink component should come first: %v", comps)
	}
}

func TestSCCsTwoCycles(t *testing.T) {
	// Two 2-cycles joined by an edge.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	comps := g.SCCs()
	if len(comps) != 2 {
		t.Fatalf("want 2 SCCs, got %v", comps)
	}
	idx := SCCIndex(4, comps)
	if idx[0] != idx[1] || idx[2] != idx[3] || idx[0] == idx[2] {
		t.Errorf("bad SCC membership: %v", idx)
	}
}

func TestSCCsSelfLoopIsTrivialButDetectable(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	comps := g.SCCs()
	if len(comps) != 2 {
		t.Fatalf("want 2 components, got %v", comps)
	}
	for _, c := range comps {
		if c[0] == 0 && g.IsTrivialSCC(c) {
			t.Error("vertex with self loop must not be trivial")
		}
		if c[0] == 1 && !g.IsTrivialSCC(c) {
			t.Error("isolated vertex must be trivial")
		}
	}
}

func TestSCCsDeepGraphNoStackOverflow(t *testing.T) {
	const n = 200000
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	if comps := g.SCCs(); len(comps) != n {
		t.Fatalf("want %d components", n)
	}
}

func TestTopo(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(1, 0)
	g.AddEdge(3, 2)
	g.AddEdge(2, 0)
	order, ok := g.Topo()
	if !ok {
		t.Fatal("acyclic graph reported cyclic")
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for v := 0; v < 4; v++ {
		for _, w := range g.Adj[v] {
			if pos[v] >= pos[w] {
				t.Errorf("topo violated for %d->%d", v, w)
			}
		}
	}
	g.AddEdge(0, 3)
	if _, ok := g.Topo(); ok {
		t.Error("cyclic graph reported acyclic")
	}
}

func TestElementaryCircuitsTriangle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	circs, trunc := g.ElementaryCircuits(0)
	if trunc {
		t.Fatal("unexpected truncation")
	}
	if len(circs) != 1 || len(circs[0]) != 3 {
		t.Fatalf("triangle: want one 3-circuit, got %v", circs)
	}
}

func TestElementaryCircuitsSelfLoopAndParallel(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 0) // parallel edge: same vertex circuit reported once
	circs, _ := g.ElementaryCircuits(0)
	if len(circs) != 2 {
		t.Fatalf("want self-loop + one 2-circuit, got %v", circs)
	}
}

func TestElementaryCircuitsCompleteGraph(t *testing.T) {
	// K4 has 20 elementary circuits (12 triangles+cycles: C(4,2)=6
	// 2-circuits, 8 3-circuits, 6 4-circuits => 20).
	n := 4
	g := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddEdge(i, j)
			}
		}
	}
	circs, trunc := g.ElementaryCircuits(0)
	if trunc {
		t.Fatal("unexpected truncation")
	}
	if len(circs) != 20 {
		t.Fatalf("K4: want 20 circuits, got %d", len(circs))
	}
}

func TestElementaryCircuitsLimit(t *testing.T) {
	n := 6
	g := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddEdge(i, j)
			}
		}
	}
	circs, trunc := g.ElementaryCircuits(5)
	if !trunc {
		t.Error("expected truncation at limit 5")
	}
	if len(circs) != 5 {
		t.Errorf("want exactly 5 circuits, got %d", len(circs))
	}
}

// Property: every reported circuit is a real elementary circuit: edges
// exist between consecutive vertices and no vertex repeats.
func TestElementaryCircuitsValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		g := New(n)
		hasEdge := make(map[[2]int]bool)
		for e := 0; e < n*2; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			g.AddEdge(a, b)
			hasEdge[[2]int{a, b}] = true
		}
		circs, _ := g.ElementaryCircuits(1000)
		seen := map[string]bool{}
		for _, c := range circs {
			visited := map[int]bool{}
			for i, v := range c {
				if visited[v] {
					return false // repeated vertex
				}
				visited[v] = true
				w := c[(i+1)%len(c)]
				if !hasEdge[[2]int{v, w}] {
					return false // missing edge
				}
			}
			// canonical form to check duplicates: rotate to min vertex
			min := 0
			for i, v := range c {
				if v < c[min] {
					min = i
				}
			}
			key := ""
			for i := range c {
				key += string(rune('a' + c[(min+i)%len(c)]))
			}
			if seen[key] {
				return false // duplicate circuit
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SCC membership is an equivalence consistent with reachability:
// two vertices share a component iff each reaches the other.
func TestSCCReachabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := New(n)
		for e := 0; e < n+rng.Intn(2*n); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		comps := g.SCCs()
		idx := SCCIndex(n, comps)
		reach := reachability(g)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				same := idx[a] == idx[b]
				mutual := reach[a][b] && reach[b][a]
				if same != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func reachability(g *Graph) [][]bool {
	n := g.N
	r := make([][]bool, n)
	for i := range r {
		r[i] = make([]bool, n)
		r[i][i] = true
		stack := []int{i}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Adj[v] {
				if !r[i][w] {
					r[i][w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return r
}

func TestNumEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(2, 2)
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
}
