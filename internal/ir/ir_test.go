package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"modsched/internal/machine"
)

func tiny(t testing.TB) *machine.Machine {
	t.Helper()
	return machine.Tiny()
}

// TestEdgeDelayTable1 checks every cell of Table 1, both columns.
func TestEdgeDelayTable1(t *testing.T) {
	const predLat, succLat = 5, 3
	cases := []struct {
		kind  DepKind
		model DelayModel
		want  int
	}{
		{Flow, VLIWDelays, 5},
		{Flow, ConservativeDelays, 5},
		{Anti, VLIWDelays, 1 - succLat},       // 1 - Latency(succ) = -2
		{Anti, ConservativeDelays, 0},         // conservative column
		{Output, VLIWDelays, 1 + 5 - succLat}, // 1 + pred - succ = 3
		{Output, ConservativeDelays, 5},       // Latency(pred)
		{Control, VLIWDelays, 5},
		{Control, ConservativeDelays, 5},
		{Mem, VLIWDelays, 1},
		{Mem, ConservativeDelays, 1},
	}
	for _, c := range cases {
		if got := EdgeDelay(c.kind, predLat, succLat, c.model); got != c.want {
			t.Errorf("EdgeDelay(%v, %v) = %d, want %d", c.kind, c.model, got, c.want)
		}
	}
}

// TestAntiDelayCanBeNegative: the paper notes anti/output delays go
// negative under the VLIW model when the successor latency is large.
func TestAntiDelayCanBeNegative(t *testing.T) {
	if d := EdgeDelay(Anti, 1, 20, VLIWDelays); d != -19 {
		t.Errorf("anti delay = %d, want -19", d)
	}
	if d := EdgeDelay(Anti, 1, 20, ConservativeDelays); d != 0 {
		t.Errorf("conservative anti delay = %d, want 0", d)
	}
}

func TestDelaysOverride(t *testing.T) {
	m := tiny(t)
	b := NewBuilder("ov", m)
	x := b.Define("add", b.Invariant("a"))
	st := b.Effect("store", b.Invariant("p"), x)
	ld := b.Define("load", b.Invariant("p"))
	b.DepDelay(st, b.OpOf(ld), Mem, 0, 7)
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	delays, err := Delays(l, m, VLIWDelays)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for ei, e := range l.Edges {
		if e.Kind == Mem {
			found = true
			if delays[ei] != 7 {
				t.Errorf("mem edge delay = %d, want override 7", delays[ei])
			}
		}
	}
	if !found {
		t.Fatal("mem edge missing")
	}
}

func TestBuilderFlowEdgesAndDistances(t *testing.T) {
	m := tiny(t)
	b := NewBuilder("flow", m)
	s := b.Future()
	x := b.Define("load", b.Invariant("p"))
	v := b.DefineAs(s, "fadd", s.Back(1), x)
	b.Effect("store", b.Invariant("q"), v.Back(2))
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Expected flow edges: load->fadd dist 0, fadd->fadd dist 1 (self),
	// fadd->store dist 2.
	type key struct{ from, to, dist int }
	want := map[key]bool{}
	defs := l.DefOf()
	loadID := defs[l.Ops[1].Dest]
	faddID := 2
	storeID := 3
	want[key{loadID, faddID, 0}] = true
	want[key{faddID, faddID, 1}] = true
	want[key{faddID, storeID, 2}] = true
	got := map[key]bool{}
	for _, e := range l.Edges {
		if e.Kind == Flow {
			got[key{e.From, e.To, e.Distance}] = true
		}
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing flow edge %+v; have %v", k, got)
		}
	}
}

func TestBuilderStartStopBracketing(t *testing.T) {
	m := tiny(t)
	b := NewBuilder("bracket", m)
	b.Define("add", b.Invariant("a"))
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if l.Ops[0].Opcode != "START" || l.Ops[l.Stop()].Opcode != "STOP" {
		t.Fatal("START/STOP not bracketing")
	}
	// Every real op must have a Control edge from START and to STOP.
	fromStart := map[int]bool{}
	toStop := map[int]bool{}
	for _, e := range l.Edges {
		if e.Kind == Control && e.From == 0 {
			fromStart[e.To] = true
		}
		if e.Kind == Control && e.To == l.Stop() {
			toStop[e.From] = true
		}
	}
	for _, op := range l.RealOps() {
		if !fromStart[op.ID] || !toStop[op.ID] {
			t.Errorf("op %d missing START/STOP bracketing edges", op.ID)
		}
	}
}

func TestBuilderPredicatedDefGetsSelfEdge(t *testing.T) {
	m := tiny(t)
	b := NewBuilder("pred", m)
	p := b.Define("cmp", b.Invariant("a"), b.Invariant("b"))
	b.SetPred(p)
	v := b.Define("copy", b.Invariant("c"))
	b.ClearPred()
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	id := -1
	for _, op := range l.RealOps() {
		if op.Opcode == "copy" {
			id = op.ID
		}
	}
	found := false
	for _, e := range l.Edges {
		if e.From == id && e.To == id && e.Kind == Flow && e.Distance == 1 {
			found = true
		}
	}
	if !found {
		t.Error("predicated definition missing implicit distance-1 self edge")
	}
	_ = v
}

func TestBuilderErrors(t *testing.T) {
	m := tiny(t)

	b := NewBuilder("unbound", m)
	f := b.Future()
	b.Define("add", f)
	b.Effect("brtop")
	if _, err := b.Build(); err == nil {
		t.Error("unbound future accepted")
	}

	b = NewBuilder("badop", m)
	b.Define("frobnicate", b.Invariant("a"))
	if _, err := b.Build(); err == nil {
		t.Error("unknown opcode accepted")
	}

	b = NewBuilder("pseudo", m)
	b.Effect("START")
	if _, err := b.Build(); err == nil {
		t.Error("explicit pseudo-op accepted")
	}

	b = NewBuilder("empty", m)
	if _, err := b.Build(); err == nil {
		t.Error("empty loop accepted")
	}

	b = NewBuilder("doublebind", m)
	f = b.Future()
	b.DefineAs(f, "add", b.Invariant("a"))
	b.DefineAs(f, "add", b.Invariant("a"))
	b.Effect("brtop")
	if _, err := b.Build(); err == nil {
		t.Error("double-bound future accepted")
	}

	b = NewBuilder("zeroval", m)
	b.Define("add", Value{})
	b.Effect("brtop")
	if _, err := b.Build(); err == nil {
		t.Error("zero Value operand accepted")
	}
}

func TestInvariantIdentity(t *testing.T) {
	m := tiny(t)
	b := NewBuilder("inv", m)
	a1 := b.Invariant("a")
	a2 := b.Invariant("a")
	c := b.Invariant("c")
	if b.RegOf(a1) != b.RegOf(a2) {
		t.Error("same invariant name must map to the same register")
	}
	if b.RegOf(a1) == b.RegOf(c) {
		t.Error("distinct invariants must get distinct registers")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := tiny(t)
	b := NewBuilder("ok", m)
	b.Define("add", b.Invariant("a"))
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	bad := l.Clone()
	bad.Edges = append(bad.Edges, Edge{From: 0, To: 99})
	if err := bad.Validate(m); err == nil {
		t.Error("out-of-range edge accepted")
	}

	bad = l.Clone()
	bad.Edges = append(bad.Edges, Edge{From: 1, To: 1, Distance: -1})
	if err := bad.Validate(m); err == nil {
		t.Error("negative distance accepted")
	}

	bad = l.Clone()
	bad.EntryFreq, bad.LoopFreq = 10, 5
	if err := bad.Validate(m); err == nil {
		t.Error("inconsistent profile accepted")
	}

	bad = l.Clone()
	bad.Ops[1].ID = 7
	if err := bad.Validate(m); err == nil {
		t.Error("wrong op ID accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := tiny(t)
	b := NewBuilder("clone", m)
	x := b.Define("load", b.Invariant("p"))
	st := b.Effect("store", b.Invariant("q"), x)
	b.DepDelay(st, st, Mem, 1, 3)
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := l.Clone()
	c.Ops[1].Srcs[0] = 99
	c.Edges[0].Distance = 42
	for _, e := range c.Edges {
		if e.DelayOverride != nil {
			*e.DelayOverride = 1000
		}
	}
	if l.Ops[1].Srcs[0] == 99 || l.Edges[0].Distance == 42 {
		t.Error("Clone shares op/edge storage")
	}
	for _, e := range l.Edges {
		if e.DelayOverride != nil && *e.DelayOverride == 1000 {
			t.Error("Clone shares delay override storage")
		}
	}
}

func TestAdjacencyMatchesEdges(t *testing.T) {
	m := tiny(t)
	b := NewBuilder("adj", m)
	x := b.Define("load", b.Invariant("p"))
	y := b.Define("fadd", x, x)
	b.Effect("store", b.Invariant("q"), y)
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	adj := l.BuildAdjacency()
	count := 0
	for v := range l.Ops {
		count += len(adj.Succs[v])
	}
	if count != len(l.Edges) {
		t.Errorf("adjacency covers %d edges, want %d", count, len(l.Edges))
	}
	for ei, e := range l.Edges {
		found := false
		for _, x := range adj.Succs[e.From] {
			if x == ei {
				found = true
			}
		}
		if !found {
			t.Errorf("edge %d missing from Succs[%d]", ei, e.From)
		}
		found = false
		for _, x := range adj.Preds[e.To] {
			if x == ei {
				found = true
			}
		}
		if !found {
			t.Errorf("edge %d missing from Preds[%d]", ei, e.To)
		}
	}
}

func TestStringRendersOps(t *testing.T) {
	m := tiny(t)
	b := NewBuilder("render", m)
	p := b.Define("cmp", b.Invariant("a"), b.Invariant("b"))
	b.SetPred(p)
	b.Define("copy", b.Invariant("c"))
	b.ClearPred()
	b.Effect("brtop")
	b.Comment("the branch")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := l.String()
	for _, want := range []string{"loop render", "cmp", "copy", "if p", "the branch", "flow(1)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

// Property: for any latency pair, conservative delays are never below -0
// and flow delay equals predecessor latency in both models.
func TestDelayProperties(t *testing.T) {
	f := func(a, b uint8) bool {
		pl, sl := int(a%40)+1, int(b%40)+1
		if EdgeDelay(Anti, pl, sl, ConservativeDelays) != 0 {
			return false
		}
		if EdgeDelay(Flow, pl, sl, VLIWDelays) != pl {
			return false
		}
		if EdgeDelay(Output, pl, sl, ConservativeDelays) != pl {
			return false
		}
		// VLIW anti/output are always <= their conservative versions.
		return EdgeDelay(Anti, pl, sl, VLIWDelays) <= 0 &&
			EdgeDelay(Output, pl, sl, VLIWDelays) <= pl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsDoubleDefinition(t *testing.T) {
	m := tiny(t)
	b := NewBuilder("dsa", m)
	b.Define("add", b.Invariant("a"))
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bad := l.Clone()
	// Force two ops to write the same register.
	bad.Ops[2].Dest = bad.Ops[1].Dest
	if err := bad.Validate(m); err == nil {
		t.Error("double definition accepted (DSA violation)")
	}
}
