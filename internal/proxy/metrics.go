package proxy

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// frontMetrics is the proxy's instrumentation. Counter names are
// prefixed mschedfront_ so a scrape of the whole cluster keeps the
// front's series apart from the replicas'. Exposition order is
// deterministic (sorted within each family) like the replicas'.
type frontMetrics struct {
	mu        sync.Mutex
	requests  map[[2]string]int64 // {endpoint, status} -> count
	forwards  map[[2]string]int64 // {replica, outcome} -> count
	retries   int64
	hedges    int64
	hedgeWins int64
	// splits counts batch requests fanned across more than one replica.
	splits     int64
	noBackends int64
}

func newFrontMetrics() *frontMetrics {
	return &frontMetrics{
		requests: make(map[[2]string]int64),
		forwards: make(map[[2]string]int64),
	}
}

func (m *frontMetrics) countRequest(endpoint string, status int) {
	m.mu.Lock()
	m.requests[[2]string{endpoint, fmt.Sprint(status)}]++
	m.mu.Unlock()
}

// countForward records one upstream attempt's outcome: the HTTP status
// as text, or "error" for a transport failure.
func (m *frontMetrics) countForward(replica, outcome string) {
	m.mu.Lock()
	m.forwards[[2]string{replica, outcome}]++
	m.mu.Unlock()
}

func (m *frontMetrics) add(field *int64, n int64) {
	m.mu.Lock()
	*field += n
	m.mu.Unlock()
}

// frontGauges carries the live values rendered alongside the counters.
type frontGauges struct {
	healthy  map[string]bool // replica addr -> up
	ejected  int64
	readmits int64
	draining bool
}

func (m *frontMetrics) writePrometheus(w io.Writer, g frontGauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprint(w, "# HELP mschedfront_requests_total Client requests by endpoint and status.\n# TYPE mschedfront_requests_total counter\n")
	for _, k := range sortedPairs(m.requests) {
		fmt.Fprintf(w, "mschedfront_requests_total{endpoint=%q,code=%q} %d\n", k[0], k[1], m.requests[k])
	}

	fmt.Fprint(w, "# HELP mschedfront_forwards_total Upstream attempts by replica and outcome (an HTTP status, or \"error\" for transport failure).\n# TYPE mschedfront_forwards_total counter\n")
	for _, k := range sortedPairs(m.forwards) {
		fmt.Fprintf(w, "mschedfront_forwards_total{replica=%q,outcome=%q} %d\n", k[0], k[1], m.forwards[k])
	}

	fmt.Fprint(w, "# HELP mschedfront_retries_total Attempts beyond the first, across all requests.\n# TYPE mschedfront_retries_total counter\n")
	fmt.Fprintf(w, "mschedfront_retries_total %d\n", m.retries)
	fmt.Fprint(w, "# HELP mschedfront_hedges_total Hedged second requests launched.\n# TYPE mschedfront_hedges_total counter\n")
	fmt.Fprintf(w, "mschedfront_hedges_total %d\n", m.hedges)
	fmt.Fprint(w, "# HELP mschedfront_hedge_wins_total Hedged requests that beat the primary.\n# TYPE mschedfront_hedge_wins_total counter\n")
	fmt.Fprintf(w, "mschedfront_hedge_wins_total %d\n", m.hedgeWins)
	fmt.Fprint(w, "# HELP mschedfront_batch_splits_total Batch requests fanned across more than one replica.\n# TYPE mschedfront_batch_splits_total counter\n")
	fmt.Fprintf(w, "mschedfront_batch_splits_total %d\n", m.splits)
	fmt.Fprint(w, "# HELP mschedfront_no_backends_total Requests failed because no healthy replica remained.\n# TYPE mschedfront_no_backends_total counter\n")
	fmt.Fprintf(w, "mschedfront_no_backends_total %d\n", m.noBackends)

	fmt.Fprint(w, "# HELP mschedfront_ejections_total Replicas ejected after consecutive health failures.\n# TYPE mschedfront_ejections_total counter\n")
	fmt.Fprintf(w, "mschedfront_ejections_total %d\n", g.ejected)
	fmt.Fprint(w, "# HELP mschedfront_readmissions_total Ejected replicas readmitted after passing probes.\n# TYPE mschedfront_readmissions_total counter\n")
	fmt.Fprintf(w, "mschedfront_readmissions_total %d\n", g.readmits)

	fmt.Fprint(w, "# HELP mschedfront_replica_healthy Whether each replica is in rotation (1) or ejected (0).\n# TYPE mschedfront_replica_healthy gauge\n")
	addrs := make([]string, 0, len(g.healthy))
	for a := range g.healthy {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		v := 0
		if g.healthy[a] {
			v = 1
		}
		fmt.Fprintf(w, "mschedfront_replica_healthy{replica=%q} %d\n", a, v)
	}

	fmt.Fprint(w, "# HELP mschedfront_draining Whether the front is draining (1) or serving (0).\n# TYPE mschedfront_draining gauge\n")
	if g.draining {
		fmt.Fprint(w, "mschedfront_draining 1\n")
	} else {
		fmt.Fprint(w, "mschedfront_draining 0\n")
	}
}

func sortedPairs(m map[[2]string]int64) [][2]string {
	keys := make([][2]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}
