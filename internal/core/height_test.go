package core

import (
	"math/rand"
	"testing"

	"modsched/internal/ir"
	"modsched/internal/machine"
	"modsched/internal/mii"
)

// TestHeightREqualsMinDistToStop verifies the paper's identity: HeightR(P)
// is exactly MinDist[P, STOP] (Section 3.2 notes the two are
// interchangeable; the iterative solver is just cheaper).
func TestHeightREqualsMinDistToStop(t *testing.T) {
	m := machine.Cydra5()
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		l := randomLoop(t, m, rng)
		var c Counters
		p, err := newProblem(nil, l, m, DefaultOptions(), &c)
		if err != nil {
			t.Fatal(err)
		}
		bounds, err := mii.Compute(l, m, p.delays, nil)
		if err != nil {
			t.Fatal(err)
		}
		for ii := bounds.MII; ii < bounds.MII+3; ii++ {
			h, err := p.heightR(ii)
			if err != nil {
				t.Fatalf("trial %d ii %d: %v", trial, ii, err)
			}
			md := mii.ComputeMinDist(l, p.delays, ii, mii.AllNodes(l), nil)
			for op := range l.Ops {
				want := md.At(op, l.Stop())
				if want == mii.NegInf {
					want = 0 // unreachable-from means height 0
				}
				if h[op] != want {
					t.Fatalf("trial %d ii %d: HeightR(%d) = %d, MinDist[%d,STOP] = %d",
						trial, ii, op, h[op], op, want)
				}
			}
		}
	}
}

// TestHeightRDivergesBelowRecMII: below the RecMII the equations have no
// fixpoint and heightR must report the positive cycle rather than loop.
func TestHeightRDivergesBelowRecMII(t *testing.T) {
	m := machine.Cydra5()
	l := build(t, m, func(b *ir.Builder) {
		s := b.Future()
		b.DefineAs(s, "fadd", s.Back(1), b.Invariant("x")) // RecMII 4
		b.Effect("brtop")
	})
	var c Counters
	p, err := newProblem(nil, l, m, DefaultOptions(), &c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.heightR(3); err == nil {
		t.Error("HeightR at II below RecMII should fail")
	}
	if _, err := p.heightR(4); err != nil {
		t.Errorf("HeightR at II=RecMII should converge: %v", err)
	}
}

// TestHeightRTopologicalForSimpleLoops: for recurrence-free loops the
// HeightR order schedules operations in topological order, the property
// Section 3.2 credits for one-pass scheduling of simple loops.
func TestHeightRTopologicalForSimpleLoops(t *testing.T) {
	m := machine.Cydra5()
	l := build(t, m, func(b *ir.Builder) {
		x := b.Define("load", b.Invariant("p"))
		y := b.Define("fmul", x, b.Invariant("c"))
		z := b.Define("fadd", y, x)
		b.Effect("store", b.Invariant("q"), z)
		b.Effect("brtop")
	})
	var c Counters
	p, err := newProblem(nil, l, m, DefaultOptions(), &c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.heightR(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range l.Edges {
		if e.Distance != 0 || e.From == e.To {
			continue
		}
		if p.delays[heightEdgeIndex(p, e)] > 0 && h[e.From] <= h[e.To] {
			t.Errorf("edge %d->%d: HeightR %d <= %d violates topological priority",
				e.From, e.To, h[e.From], h[e.To])
		}
	}
}

// heightEdgeIndex finds an edge's index (test helper).
func heightEdgeIndex(p *problem, e ir.Edge) int {
	for i, x := range p.loop.Edges {
		if x == e {
			return i
		}
	}
	return -1
}

// TestLateStartDual: Lstart mirrors Estart over scheduled neighbors.
func TestLateStartDual(t *testing.T) {
	m := machine.Cydra5()
	l := build(t, m, func(b *ir.Builder) {
		x := b.Define("load", b.Invariant("p"))
		y := b.Define("fadd", x, x)
		b.Effect("store", b.Invariant("q"), y)
		b.Effect("brtop")
	})
	opts := DefaultOptions()
	opts.PlaceLate = true
	s, err := ModuloSchedule(l, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(s); err != nil {
		t.Fatal(err)
	}
}

// TestPlaceLateAlwaysValid: the lifetime-sensitive variant must never
// produce an invalid schedule, on any machine.
func TestPlaceLateAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, m := range []*machine.Machine{machine.Cydra5(), machine.Tiny()} {
		for trial := 0; trial < 30; trial++ {
			l := randomLoop(t, m, rng)
			opts := DefaultOptions()
			opts.PlaceLate = true
			s, err := ModuloSchedule(l, m, opts)
			if err != nil {
				t.Fatalf("%s trial %d: %v", m.Name, trial, err)
			}
			if err := Check(s); err != nil {
				t.Fatalf("%s trial %d: %v", m.Name, trial, err)
			}
		}
	}
}
