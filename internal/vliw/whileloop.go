package vliw

import (
	"fmt"
	"sort"

	"modsched/internal/codegen"
	"modsched/internal/ir"
	"modsched/internal/machine"
)

// RunKernelWhile executes kernel-only code for a WHILE-loop (trip count
// unknown at entry), per the speculative schema of "Code generation
// schemas for modulo scheduled loops": new iterations are issued every II
// cycles without waiting for the loop condition, so iterations beyond the
// exit execute speculatively; their memory side effects must be nullified
// by data predicates the loop itself computes (the continue chain), and
// the hardware stops issuing once the loop-closing branch observes a false
// continue value, then drains the iterations in flight.
//
// The loop-closing brtop must take the continue value (1 = keep going) as
// its first operand — the resulting flow dependence is what guarantees the
// branch reads a committed value. maxTrips bounds the simulation against
// runaway loops. The returned Result.Cycles counts until the last
// in-flight write commits.
func RunKernelWhile(k *codegen.Kernel, m *machine.Machine, spec RunSpec, maxTrips int64) (*Result, error) {
	S := k.Alloc.Size
	rot := make([]Word, S)
	for _, pl := range k.Preloads {
		rot[pl.Phys] = spec.initBack(pl.Reg, pl.Back)
	}
	mem := make(map[int64]Word, len(spec.Mem))
	for a, v := range spec.Mem {
		mem[a] = v
	}

	// Locate the brtop; it must consume the continue value.
	brFound, brHasCond := false, false
	for _, slotOps := range k.Slots {
		for _, ko := range slotOps {
			if ko.Op.Opcode == "brtop" {
				brFound = true
				brHasCond = len(ko.Srcs) > 0
			}
		}
	}
	if !brFound {
		return nil, fmt.Errorf("vliw: while-loop kernel has no brtop")
	}
	if !brHasCond {
		return nil, fmt.Errorf("vliw: while-loop brtop has no continue operand")
	}

	physW := func(reg ir.Reg, pass int) int {
		p := (k.Alloc.Base[reg] - pass) % S
		if p < 0 {
			p += S
		}
		return p
	}
	physR := func(o codegen.Operand, pass int) int {
		p := (k.Alloc.Base[o.Reg] + o.Offset - pass) % S
		if p < 0 {
			p += S
		}
		return p
	}
	readOperand := func(o codegen.Operand, pass int) Word {
		switch o.Kind {
		case codegen.Invariant:
			return spec.Init[o.Reg]
		case codegen.Rotating:
			return rot[physR(o, pass)]
		default:
			return 0
		}
	}

	type pendingWrite struct {
		at   int64
		phys int
		val  Word
		reg  ir.Reg
		pass int
	}
	var pending []pendingWrite
	finalVal := make(map[ir.Reg]Word)
	finalPass := make(map[ir.Reg]int)
	commit := func(now int64) {
		j := 0
		for _, w := range pending {
			if w.at > now {
				pending[j] = w
				j++
				continue
			}
			rot[w.phys] = w.val
			if p, ok := finalPass[w.reg]; !ok || w.pass > p {
				finalPass[w.reg] = w.pass
				finalVal[w.reg] = w.val
			}
		}
		pending = pending[:j]
	}

	// lastIter, once known, is the final valid iteration index; issue of
	// iterations beyond it stops (they are squashed wholesale once the
	// branch resolves; side effects of already-issued speculative
	// iterations rely on the code's own predication).
	lastIter := int64(-1)
	var lastActivity int64
	for t := int64(0); ; t++ {
		pass := int(t / int64(k.II))
		slot := int(t % int64(k.II))
		if lastIter >= 0 && int64(pass) > lastIter+int64(k.SC)-1 {
			break // drained
		}
		if lastIter < 0 && int64(pass) > maxTrips+int64(k.SC) {
			return nil, fmt.Errorf("vliw: while-loop exceeded maxTrips=%d", maxTrips)
		}
		commit(t)
		for _, ko := range k.Slots[slot] {
			iter := int64(pass - ko.Stage)
			if iter < 0 {
				continue
			}
			if lastIter >= 0 && iter > lastIter {
				continue // squashed: issued after the branch resolved
			}
			oc := m.MustOpcode(ko.Op.Opcode)
			srcs := make([]Word, len(ko.Srcs))
			for i, s := range ko.Srcs {
				srcs[i] = readOperand(s, pass)
			}
			active := true
			if ko.Pred.Kind != codegen.NoOperand {
				active = readOperand(ko.Pred, pass) != 0
			}
			var result Word
			hasResult := ko.Dest.Kind != codegen.NoOperand
			switch {
			case !active:
				if hasResult {
					prev := codegen.Operand{Kind: codegen.Rotating, Reg: ko.Dest.Reg, Offset: 1}
					if iter == 0 {
						result = spec.initBack(ko.Dest.Reg, 1)
					} else {
						result = rot[physR(prev, pass)]
					}
				}
			case isMemLoad(ko.Op.Opcode):
				result = mem[int64(srcs[0])]
			case isMemStore(ko.Op.Opcode):
				mem[int64(srcs[0])] = srcs[1]
			case ko.Op.Opcode == "brtop":
				// The branch reads its iteration's continue value (a
				// normal operand, so the scheduler already guaranteed the
				// producing write has committed); until it resolves false,
				// new iterations keep issuing — that is the speculation.
				if srcs[0] == 0 && lastIter < 0 {
					lastIter = iter
				}
			default:
				v, ok, err := evalArith(ko.Op.Opcode, srcs, ko.Op.Imm)
				if err != nil {
					return nil, err
				}
				if ok {
					result = v
				}
			}
			if hasResult {
				at := t + int64(oc.Latency)
				if at <= t {
					at = t + 1
				}
				pending = append(pending, pendingWrite{at: at, phys: physW(ko.Dest.Reg, pass), val: result, reg: ko.Dest.Reg, pass: pass})
				if at > lastActivity {
					lastActivity = at
				}
			} else if t > lastActivity {
				lastActivity = t
			}
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].at < pending[j].at })
	for _, w := range pending {
		rot[w.phys] = w.val
		if p, ok := finalPass[w.reg]; !ok || w.pass > p {
			finalPass[w.reg] = w.pass
			finalVal[w.reg] = w.val
		}
	}
	return &Result{Mem: mem, Final: finalVal, Cycles: lastActivity + 1}, nil
}
