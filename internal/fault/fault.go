// Package fault injects targeted, seeded corruptions into modulo
// schedules, machine descriptions, and dependence graphs. Each fault
// kind models a concrete class of scheduler bug — an operation placed
// too early, a forgotten reservation, a stale latency — and is
// constructed so that the corrupted schedule is guaranteed to be
// illegal: applying the verification oracles (core.Check, the VLIW
// simulator) to an injection and seeing it pass would prove the oracle
// broken. This is mutation testing of the safety nets themselves.
//
// Injections never mutate the input schedule: the corrupted copy shares
// nothing mutable with the original (loop, machine, and slices are all
// deep-copied as needed). Kinds that cannot apply to a given schedule —
// e.g. swapping an alternative on a machine where every alternative
// fits — report ErrNotApplicable so harnesses can distinguish "no
// injection possible" from "injection survived".
//
// Non-equivalence is established by an independent legality predicate
// (moduloConflict, illegalAt below) rather than by core.Check, so the
// oracle under test never certifies its own test inputs.
package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"modsched/internal/core"
	"modsched/internal/ir"
	"modsched/internal/machine"
)

// Kind names one fault class. The string form appears in reports and
// regression-case comments.
type Kind string

const (
	// ShiftTime moves an operation one cycle before the earliest time a
	// dependence edge permits (a scheduler that mis-evaluated Estart).
	ShiftTime Kind = "shift-time"
	// SwapAlt changes an operation's chosen alternative to one whose
	// reservation table collides in the modulo reservation table (a
	// scheduler that recorded the wrong functional-unit choice).
	SwapAlt Kind = "swap-alt"
	// DropReservation re-places an operation directly on top of another
	// operation's reserved resource cell (a scheduler that forgot to
	// consult the MRT when placing).
	DropReservation Kind = "drop-reservation"
	// ShrinkLatency decrements an opcode latency in a cloned machine
	// while leaving the schedule's stored delay vector stale (a machine
	// description drifting out from under a cached schedule).
	ShrinkLatency Kind = "shrink-latency"
	// DeleteEdge re-places an operation as if one of its incoming
	// dependence edges did not exist, then validates against the true
	// graph (a dependence-graph construction bug).
	DeleteEdge Kind = "delete-edge"
	// PerturbII changes the initiation interval to one at which the
	// unchanged times/alternatives are illegal (an II bookkeeping bug).
	PerturbII Kind = "perturb-ii"
)

// Catalog lists every fault kind. TestFaultCatalogCovered in the stress
// package fails if a kind listed here has no detection assertion.
func Catalog() []Kind {
	return []Kind{ShiftTime, SwapAlt, DropReservation, ShrinkLatency, DeleteEdge, PerturbII}
}

// ErrNotApplicable reports that a fault kind has no way to corrupt the
// given schedule (e.g. no two operations share a resource). It is a
// per-(schedule, kind) outcome, not a failure.
var ErrNotApplicable = errors.New("fault: kind not applicable to this schedule")

// Injection is one applied corruption.
type Injection struct {
	Kind Kind
	// Detail describes the specific corruption for reports.
	Detail string
	// Schedule is the corrupted deep copy; the original is untouched.
	Schedule *core.Schedule
}

// Inject applies one corruption of the given kind to a copy of s, using
// rng to pick among the applicable corruption sites. The input schedule
// must be legal (oracles are asserted against the injection being the
// only illegality). Returns ErrNotApplicable when the kind cannot
// corrupt this schedule.
func Inject(s *core.Schedule, kind Kind, rng *rand.Rand) (*Injection, error) {
	var (
		bad    *core.Schedule
		detail string
		err    error
	)
	switch kind {
	case ShiftTime:
		bad, detail, err = shiftTime(s, rng)
	case SwapAlt:
		bad, detail, err = swapAlt(s, rng)
	case DropReservation:
		bad, detail, err = dropReservation(s, rng)
	case ShrinkLatency:
		bad, detail, err = shrinkLatency(s, rng)
	case DeleteEdge:
		bad, detail, err = deleteEdge(s, rng)
	case PerturbII:
		bad, detail, err = perturbII(s, rng)
	default:
		return nil, fmt.Errorf("fault: unknown kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return &Injection{Kind: kind, Detail: detail, Schedule: bad}, nil
}

// clone deep-copies the mutable parts of a schedule. The machine is
// shared (it is treated as immutable everywhere); shrinkLatency swaps in
// its own machine.Clone.
func clone(s *core.Schedule) *core.Schedule {
	c := *s
	c.Loop = s.Loop.Clone()
	c.Times = append([]int(nil), s.Times...)
	c.Alts = append([]int(nil), s.Alts...)
	c.Delays = append([]int(nil), s.Delays...)
	return &c
}

// shiftTime picks a non-self dependence edge and moves its sink one
// cycle before the edge's earliest legal time. The edge is violated by
// construction: t(to) = rhs-1 < rhs.
func shiftTime(s *core.Schedule, rng *rand.Rand) (*core.Schedule, string, error) {
	l := s.Loop
	var cands []int
	for ei, e := range l.Edges {
		if e.From != e.To && e.To != l.Start() {
			cands = append(cands, ei)
		}
	}
	if len(cands) == 0 {
		return nil, "", ErrNotApplicable
	}
	ei := cands[rng.Intn(len(cands))]
	e := l.Edges[ei]
	rhs := s.Times[e.From] + s.Delays[ei] - s.II*e.Distance
	bad := clone(s)
	bad.Times[e.To] = rhs - 1
	if e.To == l.Stop() {
		bad.Length = rhs - 1
	}
	return bad, fmt.Sprintf("op %d moved %d -> %d, violating edge %d->%d (%s, dist %d, delay %d)",
		e.To, s.Times[e.To], rhs-1, e.From, e.To, e.Kind, e.Distance, s.Delays[ei]), nil
}

// swapAlt looks for an (operation, alternative) pair whose swapped-in
// reservation table collides in the replayed MRT; applicability is
// decided by the independent moduloConflict predicate, never by the
// oracle under test.
func swapAlt(s *core.Schedule, rng *rand.Rand) (*core.Schedule, string, error) {
	l := s.Loop
	type cand struct{ op, alt int }
	var cands []cand
	for i, op := range l.Ops {
		oc := s.Machine.MustOpcode(op.Opcode)
		for a := range oc.Alternatives {
			if a != s.Alts[i] {
				cands = append(cands, cand{i, a})
			}
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	alts := append([]int(nil), s.Alts...)
	for _, c := range cands {
		alts[c.op] = c.alt
		if moduloConflict(s.Machine, l, s.Times, alts, s.II) {
			bad := clone(s)
			bad.Alts[c.op] = c.alt
			return bad, fmt.Sprintf("op %d (%s) alternative %d -> %d collides in the MRT",
				c.op, l.Ops[c.op].Opcode, s.Alts[c.op], c.alt), nil
		}
		alts[c.op] = s.Alts[c.op]
	}
	return nil, "", ErrNotApplicable
}

// dropReservation finds two operations whose reservation tables share a
// resource and re-places the second so one of its uses lands exactly on
// a cell the first holds. Because the original schedule was
// conflict-free, the new time is a genuine change, and the replayed MRT
// is oversubscribed by construction.
func dropReservation(s *core.Schedule, rng *rand.Rand) (*core.Schedule, string, error) {
	l := s.Loop
	type cand struct {
		a, b, newT int
		res        machine.Resource
	}
	var cands []cand
	for a := range l.Ops {
		ta := s.ResourceTable(a)
		if len(ta.Uses) == 0 {
			continue
		}
		for b := range l.Ops {
			if b == a {
				continue
			}
			tb := s.ResourceTable(b)
			for _, ua := range ta.Uses {
				for _, ub := range tb.Uses {
					if ua.Resource != ub.Resource {
						continue
					}
					// Want (newT + ub.Time) ≡ (Times[a] + ua.Time)  (mod II).
					newT := ((s.Times[a]+ua.Time-ub.Time)%s.II + s.II) % s.II
					cands = append(cands, cand{a, b, newT, ua.Resource})
				}
			}
		}
	}
	if len(cands) == 0 {
		return nil, "", ErrNotApplicable
	}
	c := cands[rng.Intn(len(cands))]
	bad := clone(s)
	bad.Times[c.b] = c.newT
	if c.b == l.Stop() {
		bad.Length = c.newT
	}
	return bad, fmt.Sprintf("op %d moved %d -> %d onto op %d's reservation of %s",
		c.b, s.Times[c.b], c.newT, c.a, s.Machine.ResourceName(c.res)), nil
}

// shrinkLatency clones the machine, decrements the latency of an opcode
// the loop uses, and leaves the stored delay vector stale. Applicability
// requires that the recomputed delay vector actually changes (Mem edges
// and overrides are latency-independent), which guarantees the
// hardened Check's stale-delay rule fires.
func shrinkLatency(s *core.Schedule, rng *rand.Rand) (*core.Schedule, string, error) {
	l := s.Loop
	seen := map[string]bool{}
	var names []string
	for _, op := range l.Ops {
		oc := s.Machine.MustOpcode(op.Opcode)
		if !seen[op.Opcode] && oc.Latency >= 1 {
			seen[op.Opcode] = true
			names = append(names, op.Opcode)
		}
	}
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	for _, name := range names {
		cm := s.Machine.Clone()
		oc := cm.MustOpcode(name)
		oc.Latency--
		newDelays, err := ir.Delays(l, cm, s.Options.DelayModel)
		if err != nil {
			continue
		}
		changed := false
		for i := range newDelays {
			if newDelays[i] != s.Delays[i] {
				changed = true
				break
			}
		}
		if !changed {
			continue
		}
		bad := clone(s)
		bad.Machine = cm
		return bad, fmt.Sprintf("opcode %q latency %d -> %d with stale delay vector",
			name, oc.Latency+1, oc.Latency), nil
	}
	return nil, "", ErrNotApplicable
}

// deleteEdge models a scheduler that never saw one incoming dependence
// edge: its sink is re-placed at the earliest time every OTHER incoming
// edge allows, and the result is validated against the true graph. The
// edge is applicable only when ignoring it genuinely moves the sink
// before its earliest legal time, so the violation is guaranteed; the
// other incoming edges stay satisfied and earlier placement can only
// slacken outgoing edges.
func deleteEdge(s *core.Schedule, rng *rand.Rand) (*core.Schedule, string, error) {
	l := s.Loop
	type cand struct{ ei, newT int }
	var cands []cand
	for ei, e := range l.Edges {
		if e.From == e.To || e.To == l.Start() {
			continue
		}
		rhs := s.Times[e.From] + s.Delays[ei] - s.II*e.Distance
		newT := 0
		for oi, o := range l.Edges {
			if oi == ei || o.To != e.To || o.From == o.To {
				continue
			}
			if r := s.Times[o.From] + s.Delays[oi] - s.II*o.Distance; r > newT {
				newT = r
			}
		}
		if newT < rhs {
			cands = append(cands, cand{ei, newT})
		}
	}
	if len(cands) == 0 {
		return nil, "", ErrNotApplicable
	}
	c := cands[rng.Intn(len(cands))]
	e := l.Edges[c.ei]
	bad := clone(s)
	bad.Times[e.To] = c.newT
	if e.To == l.Stop() {
		bad.Length = c.newT
	}
	return bad, fmt.Sprintf("op %d re-placed %d -> %d as if edge %d->%d (%s, dist %d) did not exist",
		e.To, s.Times[e.To], c.newT, e.From, e.To, e.Kind, e.Distance), nil
}

// perturbII scans initiation intervals near the schedule's own and picks
// one at which the unchanged times/alternatives are illegal, judged by
// the independent predicate. Schedules loose enough to be legal at every
// nearby II report ErrNotApplicable.
func perturbII(s *core.Schedule, rng *rand.Rand) (*core.Schedule, string, error) {
	var cands []int
	lo := s.II - 3
	if lo < 1 {
		lo = 1
	}
	for ii := lo; ii <= s.II+3; ii++ {
		if ii != s.II && illegalAt(s, ii) {
			cands = append(cands, ii)
		}
	}
	if len(cands) == 0 {
		return nil, "", ErrNotApplicable
	}
	ii := cands[rng.Intn(len(cands))]
	bad := clone(s)
	bad.II = ii
	return bad, fmt.Sprintf("II %d -> %d with times unchanged", s.II, ii), nil
}

// moduloConflict is the independent resource-legality predicate: it
// reports whether any two reservations (including two uses of one
// table) land on the same (cycle mod ii, resource) cell.
func moduloConflict(m *machine.Machine, l *ir.Loop, times, alts []int, ii int) bool {
	occupied := make(map[[2]int]bool)
	for i, op := range l.Ops {
		tab := m.MustOpcode(op.Opcode).Alternatives[alts[i]].Table
		for _, u := range tab.Uses {
			t := ((times[i]+u.Time)%ii + ii) % ii
			cell := [2]int{t, int(u.Resource)}
			if occupied[cell] {
				return true
			}
			occupied[cell] = true
		}
	}
	return false
}

// illegalAt is the independent whole-schedule legality predicate at an
// alternative initiation interval: some dependence edge violated, or
// some resource cell oversubscribed.
func illegalAt(s *core.Schedule, ii int) bool {
	if ii < 1 {
		return true
	}
	for ei, e := range s.Loop.Edges {
		if s.Times[e.To] < s.Times[e.From]+s.Delays[ei]-ii*e.Distance {
			return true
		}
	}
	return moduloConflict(s.Machine, s.Loop, s.Times, s.Alts, ii)
}
