package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modsched/internal/server"
)

// startDaemon serves a fresh in-process mschedd and returns its URL.
func startDaemon(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func writeLoops(t *testing.T, sources map[string]string) []string {
	t.Helper()
	dir := t.TempDir()
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	// Deterministic CLI argument order.
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	paths := make([]string, len(names))
	for i, name := range names {
		paths[i] = filepath.Join(dir, name)
		if err := os.WriteFile(paths[i], []byte(sources[name]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// TestServerModeMatchesLocal: the same inputs through -server and
// through local compilation must produce byte-identical stdout and
// stderr and the same exit code — for multi-file, single-file, and
// stdin invocations.
func TestServerModeMatchesLocal(t *testing.T) {
	url := startDaemon(t)
	paths := writeLoops(t, map[string]string{
		"a_daxpy.loop": goodLoop,
		"b_tiny.loop":  goodLoop,
	})

	run2 := func(args []string, stdin string) (int, string, string) {
		var out, errb bytes.Buffer
		code := run(args, strings.NewReader(stdin), &out, &errb)
		return code, out.String(), errb.String()
	}

	cases := []struct {
		name  string
		args  []string
		stdin string
	}{
		{"multi-file", paths, ""},
		{"single-file", paths[:1], ""},
		{"stdin", nil, goodLoop},
		{"machine and options", append([]string{"-machine", "tiny", "-priority", "fifo", "-budget", "4"}, paths[0]), ""},
		{"parse error", nil, "loop broken\nnonsense\n"},
		{"infeasible", nil, impossibleLoop},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lCode, lOut, lErr := run2(tc.args, tc.stdin)
			sCode, sOut, sErr := run2(append([]string{"-server", url}, tc.args...), tc.stdin)
			if sCode != lCode {
				t.Errorf("exit = %d served, %d local (served stderr: %s)", sCode, lCode, sErr)
			}
			if sOut != lOut {
				t.Errorf("stdout diverges:\n-- local --\n%s\n-- served --\n%s", lOut, sOut)
			}
			if sErr != lErr {
				t.Errorf("stderr diverges:\n-- local --\n%s\n-- served --\n%s", lErr, sErr)
			}
		})
	}
}

// TestServerModeRejectsLocalFlags: flags that cannot travel to the
// daemon are usage errors, not silent no-ops.
func TestServerModeRejectsLocalFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-server", "localhost:1", "-verbose"},
		{"-server", "localhost:1", "-mrt"},
		{"-server", "localhost:1", "-gantt", "3"},
		{"-server", "localhost:1", "-flat"},
		{"-server", "localhost:1", "-backsub"},
		{"-server", "localhost:1", "-cache"},
		{"-server", "localhost:1", "-algo", "slack"},
	} {
		var out, errb bytes.Buffer
		code := run(args, strings.NewReader(goodLoop), &out, &errb)
		if code != exitUsage {
			t.Errorf("%v: exit = %d, want %d (stderr: %s)", args, code, exitUsage, errb.String())
		}
		if !strings.Contains(errb.String(), "not supported with -server") {
			t.Errorf("%v: stderr lacks rejection notice: %s", args, errb.String())
		}
	}
}

// TestServerModeTransportError: an unreachable daemon is exit 1.
func TestServerModeTransportError(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-server", "127.0.0.1:1"}, strings.NewReader(goodLoop), &out, &errb)
	if code != exitOther {
		t.Errorf("exit = %d, want %d (stderr: %s)", code, exitOther, errb.String())
	}
}
