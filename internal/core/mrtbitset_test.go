package core

import (
	"reflect"
	"testing"

	"modsched/internal/ir"
	"modsched/internal/loopgen"
	"modsched/internal/machine"
)

// The compiled-mask MRT path (machine.Compiled + mrt.fitsMask) is a pure
// accelerator of the reference use-by-use scan: same slot, same
// alternative index, schedules and all counters bit-identical. The tests
// in this file pin that contract by compiling everything twice — once per
// path, toggled by Options.ScanMRT — and requiring interchangeable
// results.

// assertBitsetEqualsScan schedules l with the compiled-mask path and the
// reference scan and requires the two results — schedule or error — to be
// bit-identical, counters included.
func assertBitsetEqualsScan(t *testing.T, name string, l *ir.Loop, m *machine.Machine, opts Options, algo string) {
	t.Helper()
	run := func(o Options) (*Schedule, error) {
		if algo == AlgoSlack {
			return ModuloScheduleSlack(l, m, o)
		}
		return ModuloSchedule(l, m, o)
	}
	opts.ScanMRT = false
	fast, fastErr := run(opts)
	opts.ScanMRT = true
	ref, refErr := run(opts)

	if (fastErr == nil) != (refErr == nil) {
		t.Fatalf("%s: bitset err = %v, scan err = %v", name, fastErr, refErr)
	}
	if fastErr != nil {
		if fastErr.Error() != refErr.Error() {
			t.Fatalf("%s: bitset err = %q, scan err = %q", name, fastErr, refErr)
		}
		return
	}
	if fast.II != ref.II || fast.MII != ref.MII || fast.ResMII != ref.ResMII || fast.Length != ref.Length {
		t.Fatalf("%s: bitset II/MII/ResMII/SL = %d/%d/%d/%d, scan = %d/%d/%d/%d",
			name, fast.II, fast.MII, fast.ResMII, fast.Length, ref.II, ref.MII, ref.ResMII, ref.Length)
	}
	if !reflect.DeepEqual(fast.Times, ref.Times) {
		t.Fatalf("%s: bitset Times = %v\nscan Times = %v", name, fast.Times, ref.Times)
	}
	if !reflect.DeepEqual(fast.Alts, ref.Alts) {
		t.Fatalf("%s: bitset Alts = %v, scan Alts = %v", name, fast.Alts, ref.Alts)
	}
	if fast.Stats != ref.Stats {
		t.Fatalf("%s: counters diverge:\nbitset %+v\nscan   %+v", name, fast.Stats, ref.Stats)
	}
}

// TestBitsetMatchesScanCorpus runs the differential battery over three
// machines, a synthetic corpus, and every scheduling variant that touches
// the MRT hot path (early/late placement, restart ablation, the depth
// priority, the speculative II race, the slack scheduler).
func TestBitsetMatchesScanCorpus(t *testing.T) {
	machines := []struct {
		name string
		m    *machine.Machine
	}{
		{"cydra5", machine.Cydra5()},
		{"tiny", machine.Tiny()},
		{"generic", machine.Generic(machine.DefaultUnitConfig())},
	}
	n := 40
	if testing.Short() {
		n = 8
	}
	variants := []struct {
		name string
		mut  func(*Options)
		algo string
	}{
		{"default", func(o *Options) {}, AlgoIterative},
		{"placelate", func(o *Options) { o.PlaceLate = true }, AlgoIterative},
		{"restart", func(o *Options) { o.RestartOnFailure = true }, AlgoIterative},
		{"depth", func(o *Options) { o.Priority = PriorityDepth }, AlgoIterative},
		{"workers4", func(o *Options) { o.SearchWorkers = 4 }, AlgoIterative},
		{"slack", func(o *Options) {}, AlgoSlack},
	}
	for _, mk := range machines {
		loops, err := loopgen.Generate(loopgen.Config{Seed: 9_1994, N: n, MaxOps: 40}, mk.m)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range loops {
			for _, v := range variants {
				opts := DefaultOptions()
				v.mut(&opts)
				assertBitsetEqualsScan(t, mk.name+"/"+l.Name+"/"+v.name, l, mk.m, opts, v.algo)
			}
		}
	}
}

// TestBitsetMatchesScanWarm runs the warm-start battery through both MRT
// paths: the seeded probes exercise seedFits/seedPlace, and the Warm*
// effort counters must agree exactly (the mask path may not change which
// seeds land).
func TestBitsetMatchesScanWarm(t *testing.T) {
	m := machine.Generic(machine.DefaultUnitConfig())
	n := 40
	if testing.Short() {
		n = 8
	}
	loops, err := loopgen.Generate(loopgen.Config{Seed: 20260808, N: n, MaxOps: 40}, m)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.RestartOnFailure = true // the regime where warm skipping actually triggers
	for _, l := range loops {
		cold, coldErr := ModuloSchedule(l, m, opts)
		if coldErr != nil {
			t.Fatalf("%s: cold compile failed: %v", l.Name, coldErr)
		}
		for _, shift := range []int{0, 2} {
			seed := identitySeed(cold, shift)
			fast, fastErr := ModuloScheduleWarm(l, m, opts, seed)
			scan := opts
			scan.ScanMRT = true
			ref, refErr := ModuloScheduleWarm(l, m, scan, seed)
			if fastErr != nil || refErr != nil {
				t.Fatalf("%s/shift%d: warm errs: bitset %v, scan %v", l.Name, shift, fastErr, refErr)
			}
			if !reflect.DeepEqual(fast.Times, ref.Times) || !reflect.DeepEqual(fast.Alts, ref.Alts) || fast.II != ref.II {
				t.Fatalf("%s/shift%d: warm schedules diverge between paths", l.Name, shift)
			}
			if fast.Stats != ref.Stats {
				t.Fatalf("%s/shift%d: warm counters diverge:\nbitset %+v\nscan   %+v",
					l.Name, shift, fast.Stats, ref.Stats)
			}
			// And the warm result must still be the cold result.
			assertWarmEqualsCold(t, l.Name+"/bitset-warm", l, m, opts, seed, cold, nil)
		}
	}
}

// TestBitsetMultiWordMasks exercises masks that span several 64-bit
// words: a 69-resource machine makes even a single MRT row cross a word
// boundary, so every placement tests the sparse multi-word path.
func TestBitsetMultiWordMasks(t *testing.T) {
	m := machine.Generic(machine.UnitConfig{
		MemPorts: 30, ALUs: 30, Multipliers: 8,
		LoadLatency: 3, ALULatency: 1, MulLatency: 3, DivLatency: 10,
	})
	if nr := m.NumResources(); nr < 65 {
		t.Fatalf("test machine has %d resources, need >= 65 for multi-word masks", nr)
	}
	if c := m.Compiled(3); c.Words < 2 {
		t.Fatalf("compiled masks use %d words, want >= 2", c.Words)
	}
	loops, err := loopgen.Generate(loopgen.Config{Seed: 65, N: 20, MaxOps: 60}, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range loops {
		assertBitsetEqualsScan(t, l.Name, l, m, DefaultOptions(), AlgoIterative)
	}
}

// TestMRTConflictsOrderAndAllocs pins the two contracts of the
// allocation-free mrt.conflicts: output order is first-collision order
// (as the old map-dedup version produced, since it appended on first
// sighting), and steady-state calls allocate nothing.
func TestMRTConflictsOrderAndAllocs(t *testing.T) {
	m := newMRT(4, 3)
	tabA := machine.MustTable(machine.ResourceUse{Resource: 0, Time: 0})
	tabB := machine.MustTable(machine.ResourceUse{Resource: 1, Time: 0})
	tabC := machine.MustTable(machine.ResourceUse{Resource: 2, Time: 0})
	m.place(11, 1, tabA)
	m.place(7, 1, tabB)
	m.place(3, 1, tabC)
	// Raw literal: MustTable canonicalizes use order, but conflicts must
	// report victims in the table's own first-collision order.
	probe := machine.ReservationTable{Uses: []machine.ResourceUse{
		{Resource: 1, Time: 0}, // hits 7 first
		{Resource: 0, Time: 0}, // then 11
		{Resource: 1, Time: 4}, // 7 again: deduped
		{Resource: 2, Time: 0}, // then 3
	}}
	want := []int{7, 11, 3}
	if got := m.conflicts(1, probe); !reflect.DeepEqual(got, want) {
		t.Fatalf("conflicts = %v, want %v (first-collision order)", got, want)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if got := m.conflicts(1, probe); len(got) != 3 {
			t.Fatalf("conflicts = %v", got)
		}
	})
	if allocs != 0 {
		t.Errorf("conflicts allocates %.1f per call, want 0", allocs)
	}
}

// TestOccMirrorsOwner pins the occupancy-bitset invariant directly: after
// any place/remove sequence, bit c of occ is set exactly when owner[c]
// holds an op.
func TestOccMirrorsOwner(t *testing.T) {
	m := newMRT(5, 4)
	tabs := []machine.ReservationTable{
		machine.MustTable(machine.ResourceUse{Resource: 0, Time: 0}, machine.ResourceUse{Resource: 2, Time: 3}),
		machine.MustTable(machine.ResourceUse{Resource: 1, Time: 1}),
		machine.MustTable(machine.ResourceUse{Resource: 3, Time: 0}, machine.ResourceUse{Resource: 3, Time: 7}),
	}
	m.place(0, 0, tabs[0])
	m.place(1, 2, tabs[1])
	m.place(2, 4, tabs[2])
	m.remove(1, 2, tabs[1])
	assertOccMirrorsOwner(t, m)
	m.remove(0, 0, tabs[0])
	m.remove(2, 4, tabs[2])
	assertOccMirrorsOwner(t, m)
	for _, w := range m.occ {
		if w != 0 {
			t.Fatal("occ not empty after removing every placement")
		}
	}
}

func assertOccMirrorsOwner(t *testing.T, m *mrt) {
	t.Helper()
	for c := range m.owner {
		bit := m.occ[c>>6]>>(uint(c)&63)&1 == 1
		if bit != (m.owner[c] != -1) {
			t.Fatalf("cell %d: occ bit %v, owner %d", c, bit, m.owner[c])
		}
	}
}
