package vliw

import (
	"testing"

	"modsched/internal/core"
)

// TestAnyTripsMatchesReference: preconditioning makes the explicit schema
// correct for every trip count, not just the ValidTrips ones.
func TestAnyTripsMatchesReference(t *testing.T) {
	for _, m := range machinesUnderTest() {
		for trips := int64(1); trips <= 40; trips++ {
			tl := buildDaxpy(t, m, trips)
			ref, err := RunReference(tl.loop, tl.spec)
			if err != nil {
				t.Fatal(err)
			}
			sched, err := core.ModuloSchedule(tl.loop, m, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunFlatAnyTrips(tl.loop, m, sched, tl.spec)
			if err != nil {
				t.Fatalf("%s trips=%d: %v", m.Name, trips, err)
			}
			for a, want := range ref.Mem {
				if g := got.Mem[a]; !close(g, want) {
					t.Fatalf("%s trips=%d: mem[%d] = %v, want %v", m.Name, trips, a, g, want)
				}
			}
			for a := range got.Mem {
				if _, ok := ref.Mem[a]; !ok {
					t.Fatalf("%s trips=%d: stray write mem[%d]", m.Name, trips, a)
				}
			}
		}
	}
}

// TestAnyTripsRecurrenceThreading: the accumulator's live state must carry
// from the scalar remainder into the pipelined portion.
func TestAnyTripsRecurrenceThreading(t *testing.T) {
	for _, m := range machinesUnderTest() {
		for trips := int64(5); trips <= 45; trips += 7 {
			tl := buildDotProduct(t, m, trips)
			ref, err := RunReference(tl.loop, tl.spec)
			if err != nil {
				t.Fatal(err)
			}
			sched, err := core.ModuloSchedule(tl.loop, m, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunFlatAnyTrips(tl.loop, m, sched, tl.spec)
			if err != nil {
				t.Fatalf("%s trips=%d: %v", m.Name, trips, err)
			}
			for r, want := range ref.Final {
				if g, ok := got.Final[r]; !ok || !close(g, want) {
					t.Fatalf("%s trips=%d: final r%d = %v (ok=%v), want %v", m.Name, trips, r, g, ok, want)
				}
			}
		}
	}
}

// TestAnyTripsCycleAccounting: cycles include the scalar remainder at the
// list-schedule rate.
func TestAnyTripsCycleAccounting(t *testing.T) {
	m := machinesUnderTest()[0]
	tl := buildDaxpy(t, m, 3)
	sched, err := core.ModuloSchedule(tl.loop, m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if int64(sched.StageCount()) <= tl.spec.Trips {
		t.Skip("trip count not below stage count on this machine")
	}
	got, err := RunFlatAnyTrips(tl.loop, m, sched, tl.spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles <= 0 {
		t.Error("scalar-only path must still charge cycles")
	}
}
