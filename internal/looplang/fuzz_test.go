package looplang

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"modsched/internal/ir"
)

// edgeSignature is the multiset of explicitly printable dependence edges
// (mem/anti/output — flow edges are reconstructed from operand references
// and so are not part of the printed form's contract).
func edgeSignature(l *ir.Loop) string {
	var sig []string
	for _, e := range l.Edges {
		switch e.Kind {
		case ir.Mem, ir.Anti, ir.Output:
			d := -1
			if e.DelayOverride != nil {
				d = *e.DelayOverride
			}
			sig = append(sig, fmt.Sprintf("%d:%d->%d dist %d delay %d", e.Kind, e.From, e.To, e.Distance, d))
		}
	}
	sort.Strings(sig)
	return strings.Join(sig, "\n")
}

// FuzzLooplangRoundTrip: for any input the parser must either reject with
// a *ParseError (never panic, never another error type), or accept and
// produce a loop whose printed form re-parses to a structurally identical
// loop, with Print a fixpoint thereafter.
func FuzzLooplangRoundTrip(f *testing.F) {
	seeds := []string{
		"loop daxpy\nprofile 5 10000\n\nxi = aadd xi@1, #8\nx  = load xi\nt1 = fmul a, x\nst: store xi, t1\nbrtop\n",
		"loop guarded\np = cmp x, limit\n(p) s = fadd s@1, x\nbrtop\n",
		"loop deps\na: x = load p\nb: store q, x\nbrtop\n!mem b -> a dist 1 delay 2\n",
		"loop min\nbrtop\n",
		"loop bad\nx = \nbrtop\n",
		"!mem a -> b dist 1\n",
		"loop l\nx = op y@2, #-7\n",
		"; comment only\n",
		"loop l\n() x = y\n",
		"loop l\nprofile 1\nbrtop\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		l, err := Parse(src, nil) // nil machine: syntax-only, the fuzzing mode
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("rejection is not a *ParseError: %T %v", err, err)
			}
			if pe.Line < 0 || pe.Line > strings.Count(src, "\n")+1 {
				t.Fatalf("ParseError.Line %d outside input", pe.Line)
			}
			return
		}
		text := Print(l)
		l2, err := Parse(text, nil)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput:\n%s\nprinted:\n%s", err, src, text)
		}
		if l.NumRealOps() != l2.NumRealOps() {
			t.Fatalf("op count changed: %d -> %d\nprinted:\n%s", l.NumRealOps(), l2.NumRealOps(), text)
		}
		if l.EntryFreq != l2.EntryFreq || l.LoopFreq != l2.LoopFreq {
			t.Fatalf("profile changed: %d/%d -> %d/%d", l.EntryFreq, l.LoopFreq, l2.EntryFreq, l2.LoopFreq)
		}
		if s1, s2 := edgeSignature(l), edgeSignature(l2); s1 != s2 {
			t.Fatalf("explicit edges changed:\n%s\n-- vs --\n%s\nprinted:\n%s", s1, s2, text)
		}
		if text2 := Print(l2); text2 != text {
			t.Fatalf("Print is not a fixpoint:\n%s\n-- vs --\n%s", text, text2)
		}
	})
}
