// Package regalloc allocates registers for modulo-scheduled kernels.
//
// For machines with rotating register files it implements a
// lifetime-accurate cylinder packing in the spirit of Rau, Lee, Tirumalai
// and Schlansker, "Register allocation for software pipelined loops": each
// loop-variant EVR is a *wand* that writes one new physical register per
// kernel pass (the file base decrements every pass), its instances stay
// live for a fixed number of passes, and — crucially — its *live-in*
// instances (values preloaded before the loop and read during the fill
// phase by late-stage consumers) are live from loop entry, far longer than
// the steady-state lifetime. Wands are placed on the cyclic file greedily,
// longest-lifetime first, each at the first base that provably never
// collides with an already-placed wand; the file grows until everything
// fits.
//
// Invariants (loop-invariant registers) stay in the static file with
// identity assignment and are not handled here.
package regalloc

import (
	"fmt"
	"sort"

	"modsched/internal/ir"
)

// Virtual describes one live-in instance of a wand: the value the EVR held
// before loop entry that some reader consumes during the fill phase.
type Virtual struct {
	// V is the virtual write pass (always < Stage; may be negative): the
	// pass at which the instance "would have been" produced.
	V int
	// LastRead is the last pass at which the instance is read. The
	// instance is live on [0, LastRead] because it is preloaded before the
	// first pass.
	LastRead int
}

// Wand is the allocation request for one loop-variant register.
type Wand struct {
	Reg ir.Reg
	// Stage is the kernel stage of the defining operation: its first
	// actual write happens in pass Stage.
	Stage int
	// Life is the maximum read offset: the instance written in pass w is
	// live on [w, w+Life].
	Life int
	// Virtuals lists the live-in instances (deduplicated by V, worst-case
	// LastRead).
	Virtuals []Virtual
}

// Rotating is a rotating-register-file allocation.
type Rotating struct {
	// Base maps each loop-variant register to its wand base offset.
	Base map[ir.Reg]int
	// Size is the rotating file size.
	Size int
	// wands retains the accepted requests for verification.
	wands map[ir.Reg]Wand
}

// AllocateRotating packs the wands onto the smallest cyclic file the
// greedy search finds. It returns an error only for malformed requests;
// packing itself always succeeds by growing the file.
func AllocateRotating(wands []Wand) (*Rotating, error) {
	sumLen := 0
	maxLife := 0
	for _, w := range wands {
		if w.Life < 0 || w.Stage < 0 {
			return nil, fmt.Errorf("regalloc: wand r%d has negative life/stage", w.Reg)
		}
		for _, v := range w.Virtuals {
			if v.V >= w.Stage {
				return nil, fmt.Errorf("regalloc: wand r%d virtual at pass %d not before stage %d", w.Reg, v.V, w.Stage)
			}
		}
		sumLen += w.Life + 1
		if w.Life+1 > maxLife {
			maxLife = w.Life + 1
		}
	}
	sorted := append([]Wand(nil), wands...)
	sort.Slice(sorted, func(i, j int) bool {
		li, lj := sorted[i].maxSpan(), sorted[j].maxSpan()
		if li != lj {
			return li > lj
		}
		return sorted[i].Reg < sorted[j].Reg
	})

	size := sumLen
	if size < maxLife+1 {
		size = maxLife + 1
	}
	if size < 1 {
		size = 1
	}
	for ; ; size++ {
		if bases, ok := tryPack(sorted, size); ok {
			a := &Rotating{Base: bases, Size: size, wands: make(map[ir.Reg]Wand, len(wands))}
			for _, w := range wands {
				a.wands[w.Reg] = w
			}
			return a, nil
		}
	}
}

// maxSpan is the longest lifetime any instance of the wand has, in passes.
func (w Wand) maxSpan() int {
	span := w.Life + 1
	for _, v := range w.Virtuals {
		if s := v.LastRead + 1; s > span {
			span = s
		}
	}
	return span
}

// tryPack places each wand at the first base with no conflict.
func tryPack(wands []Wand, size int) (map[ir.Reg]int, bool) {
	bases := make(map[ir.Reg]int, len(wands))
	var placed []int // indices into wands
	for i, w := range wands {
		found := -1
		for b := 0; b < size; b++ {
			ok := true
			for _, j := range placed {
				if wandsConflict(w, b, wands[j], bases[wands[j].Reg], size) {
					ok = false
					break
				}
			}
			if ok && !selfConflict(w, size) {
				found = b
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		bases[w.Reg] = found
		placed = append(placed, i)
	}
	return bases, true
}

// selfConflict reports whether a wand's own instances collide at this file
// size: instance w and w+size share a cell, so every lifetime (steady and
// virtual-to-first-steady) must be shorter than size.
func selfConflict(w Wand, size int) bool {
	if w.Life >= size {
		return true
	}
	for _, v := range w.Virtuals {
		// The first steady write to the virtual's cell is at pass v+size
		// (pass v itself is predicated off). The virtual must be dead by
		// then — and, symmetrically, earlier steady instances of the same
		// cell do not exist before pass Stage.
		if v.LastRead >= v.V+size {
			return true
		}
	}
	return false
}

// wandsConflict reports whether wand a at base ba and wand b at base bb
// can ever have two live instances in the same physical register of a file
// with the given size. Instance w of a wand occupies cell (base - w) mod
// size; steady instances (w >= Stage, one per pass, unbounded trip count)
// are live on [w, w+Life]; virtual instances are live on [0, LastRead].
func wandsConflict(a Wand, ba int, b Wand, bb int, size int) bool {
	// Cells collide when ba - wa == bb - wb (mod size), i.e. when
	// wb = wa + delta (mod size) with delta = bb - ba.
	delta := bb - ba

	// steady(a) vs steady(b): instances wa and wb = wa + delta + k*size
	// overlap iff wb - wa is within [-Life(b), Life(a)]; both streams are
	// unbounded above, so any residue is realizable.
	for k := -2; k <= 2; k++ {
		d := delta + k*size
		if d >= -b.Life && d <= a.Life {
			return true
		}
	}
	// virtual(a) vs steady(b): the virtual instance v occupies cell
	// (ba - v) from pass 0; b writes that cell at passes
	// wb = v + delta + k*size, gated at wb >= b.Stage; conflict iff the
	// first such write lands at or before the virtual's last read.
	if virtualVsSteady(a.Virtuals, delta, b.Stage, size) {
		return true
	}
	// virtual(b) vs steady(a): symmetric, wa = v - delta + k*size.
	if virtualVsSteady(b.Virtuals, -delta, a.Stage, size) {
		return true
	}
	// virtual vs virtual: both live from pass 0, so sharing a cell at all
	// is a conflict: ba - va == bb - vb, i.e. vb == va + delta (mod size).
	for _, va := range a.Virtuals {
		for _, vb := range b.Virtuals {
			if mod(va.V+delta-vb.V, size) == 0 {
				return true
			}
		}
	}
	return false
}

// virtualVsSteady checks virtual instances (live on [0, LastRead], at
// cells ownBase - v) against another wand's steady write stream, which
// hits those cells at passes w = v + delta + k*size, w >= otherStage.
func virtualVsSteady(virtuals []Virtual, delta, otherStage, size int) bool {
	for _, v := range virtuals {
		w := v.V + delta
		for w < otherStage {
			w += size
		}
		for w-size >= otherStage {
			w -= size
		}
		// w is the first write pass >= otherStage hitting the cell.
		if w <= v.LastRead {
			return true
		}
	}
	return false
}

func mod(x, m int) int {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}

// Phys returns the physical register of reg's instance written in kernel
// pass writePass (negative for virtual instances), with RRB(0) = 0.
func (a *Rotating) Phys(reg ir.Reg, writePass int) int {
	base, ok := a.Base[reg]
	if !ok {
		panic(fmt.Sprintf("regalloc: r%d is not rotating-allocated", reg))
	}
	return mod(base-writePass, a.Size)
}

// Wands returns the accepted allocation requests (for verification).
func (a *Rotating) Wands() map[ir.Reg]Wand { return a.wands }

// Verify exhaustively replays the write/read schedule over enough passes
// to cover the fill phase plus two full rotations and reports any cell
// that is overwritten while live. It is the independent check backing the
// analytical conflict test, used by property tests.
func (a *Rotating) Verify() error {
	horizon := 2*a.Size + 4
	for _, w := range a.wands {
		if w.Stage+w.Life+1 > horizon {
			horizon = w.Stage + w.Life + 1 + 2*a.Size
		}
	}
	type occupant struct {
		reg  ir.Reg
		till int // live through this pass
	}
	cells := make([]occupant, a.Size)
	for i := range cells {
		cells[i] = occupant{reg: ir.NoReg, till: -1}
	}
	// Preload virtuals (live from pass 0).
	for _, w := range a.wands {
		for _, v := range w.Virtuals {
			c := a.Phys(w.Reg, v.V)
			if cells[c].reg != ir.NoReg {
				return fmt.Errorf("regalloc verify: preload collision at cell %d between r%d and r%d", c, cells[c].reg, w.Reg)
			}
			cells[c] = occupant{reg: w.Reg, till: v.LastRead}
		}
	}
	for pass := 0; pass < horizon; pass++ {
		for _, w := range a.wands {
			if pass < w.Stage {
				continue
			}
			c := a.Phys(w.Reg, pass)
			if o := cells[c]; o.till >= pass {
				return fmt.Errorf("regalloc verify: pass %d: r%d overwrites cell %d still live for r%d (till %d)",
					pass, w.Reg, c, o.reg, o.till)
			}
			cells[c] = occupant{reg: w.Reg, till: pass + w.Life}
		}
	}
	return nil
}
