package mii

import (
	"math/rand"
	"testing"
	"testing/quick"

	"modsched/internal/ir"
	"modsched/internal/machine"
)

func buildLoop(t testing.TB, m *machine.Machine, f func(b *ir.Builder)) (*ir.Loop, []int) {
	t.Helper()
	b := ir.NewBuilder("t", m)
	f(b)
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	delays, err := ir.Delays(l, m, ir.VLIWDelays)
	if err != nil {
		t.Fatal(err)
	}
	return l, delays
}

func TestResMIICountsMostUsedResource(t *testing.T) {
	m := machine.Tiny() // 1 mem port, 1 ALU, 1 multiplier
	l, _ := buildLoop(t, m, func(b *ir.Builder) {
		p := b.Invariant("p")
		x := b.Define("load", p)
		y := b.Define("load", p)
		z := b.Define("load", p)
		b.Define("fadd", x, y)
		b.Effect("store", p, z)
		b.Effect("brtop")
	})
	res, _, err := ResMII(l, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 3 loads + 1 store on a single memory port.
	if res != 4 {
		t.Errorf("ResMII = %d, want 4", res)
	}
}

func TestResMIIUsesAlternatives(t *testing.T) {
	// Two memory ports: four loads should spread across both.
	m := machine.Generic(machine.DefaultUnitConfig()) // 2 ports
	l, _ := buildLoop(t, m, func(b *ir.Builder) {
		p := b.Invariant("p")
		for i := 0; i < 4; i++ {
			b.Define("load", p)
		}
		b.Effect("brtop")
	})
	res, choice, err := ResMII(l, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != 2 {
		t.Errorf("ResMII = %d, want 2 (4 loads over 2 ports)", res)
	}
	alts := map[int]int{}
	for _, op := range l.RealOps() {
		if op.Opcode == "load" {
			alts[choice[op.ID]]++
		}
	}
	if alts[0] != 2 || alts[1] != 2 {
		t.Errorf("greedy alternative selection unbalanced: %v", alts)
	}
}

func TestResMIIDivDominates(t *testing.T) {
	m := machine.Cydra5()
	l, _ := buildLoop(t, m, func(b *ir.Builder) {
		a := b.Invariant("a")
		b.Define("fdiv", a, a)
		b.Effect("brtop")
	})
	res, _, err := ResMII(l, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// fdiv occupies a multiplier stage for latency-2 cycles.
	if res != machine.Cydra5DivLatency-2 {
		t.Errorf("ResMII = %d, want %d", res, machine.Cydra5DivLatency-2)
	}
}

func TestRecMIISimpleAccumulator(t *testing.T) {
	m := machine.Cydra5() // fadd latency 4
	l, delays := buildLoop(t, m, func(b *ir.Builder) {
		s := b.Future()
		b.DefineAs(s, "fadd", s.Back(1), b.Invariant("x"))
		b.Effect("brtop")
	})
	rec, err := ExactRecMII(l, delays, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec != 4 {
		t.Errorf("RecMII = %d, want 4 (fadd latency)", rec)
	}
}

func TestRecMIIDistanceDividesDelay(t *testing.T) {
	m := machine.Cydra5()
	l, delays := buildLoop(t, m, func(b *ir.Builder) {
		s := b.Future()
		b.DefineAs(s, "fadd", s.Back(4), b.Invariant("x"))
		b.Effect("brtop")
	})
	rec, err := ExactRecMII(l, delays, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec != 1 {
		t.Errorf("RecMII = %d, want ceil(4/4) = 1", rec)
	}
}

func TestRecMIITwoOpCircuit(t *testing.T) {
	m := machine.Cydra5()
	l, delays := buildLoop(t, m, func(b *ir.Builder) {
		s := b.Future()
		t1 := b.Define("fmul", s.Back(1), b.Invariant("c")) // latency 5
		b.DefineAs(s, "fadd", t1, b.Invariant("y"))         // latency 4
		b.Effect("brtop")
	})
	rec, err := ExactRecMII(l, delays, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec != 9 {
		t.Errorf("RecMII = %d, want 9 (5+4 around a distance-1 circuit)", rec)
	}
}

func TestRecMIIZeroDistanceCycleRejected(t *testing.T) {
	m := machine.Cydra5()
	l, delays := buildLoop(t, m, func(b *ir.Builder) {
		x := b.Define("fadd", b.Invariant("a"), b.Invariant("b"))
		y := b.Define("fadd", x, b.Invariant("c"))
		b.Effect("brtop")
		// Force an illegal zero-distance cycle y -> x.
		b.Dep(b.OpOf(y), b.OpOf(x), ir.Flow, 0)
	})
	if _, err := ExactRecMII(l, delays, nil); err == nil {
		t.Error("zero-distance positive-delay cycle must be rejected")
	}
}

func TestMinDistDiagonalSemantics(t *testing.T) {
	m := machine.Cydra5()
	l, delays := buildLoop(t, m, func(b *ir.Builder) {
		s := b.Future()
		b.DefineAs(s, "fadd", s.Back(1), b.Invariant("x")) // RecMII 4
		b.Effect("brtop")
	})
	nodes := AllNodes(l)
	if md := ComputeMinDist(l, delays, 3, nodes, nil); !md.PositiveDiagonal() {
		t.Error("II=3 below RecMII=4 should give a positive diagonal")
	}
	md := ComputeMinDist(l, delays, 4, nodes, nil)
	if md.PositiveDiagonal() {
		t.Error("II=4 should be feasible")
	}
	if !md.ZeroDiagonal() {
		t.Error("II=RecMII should have a tight (zero) diagonal entry")
	}
	if md2 := ComputeMinDist(l, delays, 5, nodes, nil); md2.PositiveDiagonal() || md2.ZeroDiagonal() {
		t.Error("II above RecMII should have all-negative diagonal")
	}
}

func TestMinDistPathLongest(t *testing.T) {
	m := machine.Cydra5()
	l, delays := buildLoop(t, m, func(b *ir.Builder) {
		x := b.Define("load", b.Invariant("p")) // 20
		y := b.Define("fmul", x, x)             // 5
		z := b.Define("fadd", y, y)             // 4
		b.Effect("store", b.Invariant("q"), z)
		b.Effect("brtop")
	})
	md := ComputeMinDist(l, delays, 10, AllNodes(l), nil)
	// START->STOP is at least the critical path 20+5+4+store latency.
	if got := md.At(l.Start(), l.Stop()); got < 29 {
		t.Errorf("MinDist[START,STOP] = %d, want >= 29", got)
	}
	if md.At(l.Stop(), l.Start()) != NegInf {
		t.Error("no path STOP->START expected")
	}
}

func TestMIIMaxOfBounds(t *testing.T) {
	m := machine.Cydra5()
	// Resource-bound loop: many independent fp adds (shared source buses).
	l1, d1 := buildLoop(t, m, func(b *ir.Builder) {
		a := b.Invariant("a")
		for i := 0; i < 10; i++ {
			b.Define("fadd", a, a)
		}
		b.Effect("brtop")
	})
	r1, err := Compute(l1, m, d1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MII != r1.ResMII || r1.ResMII < 10 {
		t.Errorf("resource-bound loop: MII=%d ResMII=%d", r1.MII, r1.ResMII)
	}

	// Recurrence-bound loop: long dependence circuit, few resources.
	l2, d2 := buildLoop(t, m, func(b *ir.Builder) {
		s := b.Future()
		t1 := b.Define("fmul", s.Back(1), b.Invariant("c"))
		t2 := b.Define("fmul", t1, b.Invariant("d"))
		b.DefineAs(s, "fadd", t2, b.Invariant("y"))
		b.Effect("brtop")
	})
	r2, err := Compute(l2, m, d2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MII <= r2.ResMII {
		t.Errorf("recurrence-bound loop: MII=%d should exceed ResMII=%d", r2.MII, r2.ResMII)
	}
	if r2.MII != 14 { // 5+5+4 around the circuit
		t.Errorf("MII = %d, want 14", r2.MII)
	}
}

func TestSCCStats(t *testing.T) {
	m := machine.Cydra5()
	l, d := buildLoop(t, m, func(b *ir.Builder) {
		// one 2-op circuit + one accumulator + independents
		s := b.Future()
		t1 := b.Define("fmul", s.Back(1), b.Invariant("c"))
		b.DefineAs(s, "fadd", t1, b.Invariant("y"))
		acc := b.Future()
		b.DefineAs(acc, "fadd", acc.Back(1), b.Invariant("z"))
		b.Define("fadd", b.Invariant("a"), b.Invariant("b"))
		b.Effect("brtop")
	})
	r, err := Compute(l, m, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NonTrivialSCCs) != 1 {
		t.Errorf("non-trivial SCCs = %d, want 1", len(r.NonTrivialSCCs))
	}
	if len(r.SCCSizes) != 4 { // the 2-op circuit + singletons acc, indep, brtop
		t.Errorf("SCC count = %d (%v), want 4", len(r.SCCSizes), r.SCCSizes)
	}
}

func TestCircuitsCrossChecksMinDist(t *testing.T) {
	m := machine.Cydra5()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		l, delays := randomRecurrentLoop(t, m, rng)
		exact, err := ExactRecMII(l, delays, nil)
		if err != nil {
			t.Fatal(err)
		}
		circ, ok, err := RecMIIByCircuits(l, delays, 200000)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue // truncated enumeration; skip
		}
		if circ != exact {
			t.Errorf("trial %d: circuits RecMII %d != MinDist RecMII %d\n%s", trial, circ, exact, l)
		}
	}
}

// randomRecurrentLoop builds a loop with random recurrences and DAG ops.
func randomRecurrentLoop(t testing.TB, m *machine.Machine, rng *rand.Rand) (*ir.Loop, []int) {
	t.Helper()
	b := ir.NewBuilder("rand", m)
	var vals []ir.Value
	pick := func() ir.Value {
		if len(vals) == 0 || rng.Float64() < 0.3 {
			return b.Invariant("inv")
		}
		return vals[rng.Intn(len(vals))]
	}
	ops := []string{"fadd", "fmul", "add", "load"}
	nrec := 1 + rng.Intn(2)
	for r := 0; r < nrec; r++ {
		head := b.Future()
		ln := 1 + rng.Intn(3)
		dist := 1 + rng.Intn(3)
		prev := head.Back(dist)
		for i := 0; i < ln; i++ {
			opc := ops[rng.Intn(3)]
			var v ir.Value
			if i == ln-1 {
				v = b.DefineAs(head, opc, prev, pick())
			} else {
				v = b.Define(opc, prev, pick())
			}
			vals = append(vals, v)
			prev = v
		}
	}
	for i := rng.Intn(5); i > 0; i-- {
		vals = append(vals, b.Define(ops[rng.Intn(len(ops))], pick(), pick()))
	}
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	delays, err := ir.Delays(l, m, ir.VLIWDelays)
	if err != nil {
		t.Fatal(err)
	}
	return l, delays
}

// Property: feasibility is monotone in II, the production MII is
// max(ResMII, RecMII') with RecMII' never probed below ResMII, and the
// exact RecMII never exceeds the production MII.
func TestMIIMonotoneProperty(t *testing.T) {
	m := machine.Cydra5()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, delays := randomRecurrentLoop(t, m, rng)
		res, _, err := ResMII(l, m, nil)
		if err != nil {
			return false
		}
		prod, err := RecurrenceMII(l, delays, res, nil)
		if err != nil {
			return false
		}
		exact, err := ExactRecMII(l, delays, nil)
		if err != nil {
			return false
		}
		if prod < res || exact > prod {
			return false
		}
		if max(res, exact) != prod {
			return false
		}
		// Monotone: any II >= exact RecMII has no positive diagonal.
		nodes := AllNodes(l)
		for ii := exact; ii < exact+3; ii++ {
			if ComputeMinDist(l, delays, ii, nodes, nil).PositiveDiagonal() {
				return false
			}
		}
		if exact > 1 {
			if !ComputeMinDist(l, delays, exact-1, nodes, nil).PositiveDiagonal() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestWholeGraphAgreesWithPerSCC(t *testing.T) {
	m := machine.Cydra5()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		l, delays := randomRecurrentLoop(t, m, rng)
		a, err := RecurrenceMII(l, delays, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RecurrenceMIIWholeGraph(l, delays, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("trial %d: per-SCC %d != whole-graph %d", trial, a, b)
		}
	}
}

func TestCountersAccumulate(t *testing.T) {
	m := machine.Cydra5()
	l, delays := buildLoop(t, m, func(b *ir.Builder) {
		s := b.Future()
		t1 := b.Define("fmul", s.Back(1), b.Invariant("c"))
		b.DefineAs(s, "fadd", t1, b.Invariant("y"))
		b.Effect("brtop")
	})
	var c Counters
	if _, err := Compute(l, m, delays, &c); err != nil {
		t.Fatal(err)
	}
	if c.MinDistCalls == 0 || c.MinDistInner == 0 {
		t.Error("MinDist counters not incremented for a recurrence-bound loop")
	}
	if c.ResMIIInspections == 0 {
		t.Error("ResMII counters not incremented")
	}
}
