package machine

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzMachlangRoundTrip: for any input, ParseMachine must either reject
// with a *ParseError (never panic, never another error type), or accept
// and produce a machine whose printed form re-parses to an identical
// fingerprint, with PrintMachine a fixpoint thereafter. Seeded from
// literal snippets plus the machine zoo.
func FuzzMachlangRoundTrip(f *testing.F) {
	seeds := []string{
		machlangDemo,
		"machine m\nresource R\nop add latency 1 class ialu\nalt a R@0\n",
		"machine m\nresource R\nop nop latency 0 class pseudo\nalt none\n",
		"machine m\nresource A\nresource B\nop x latency 3 class mul\nalt p A@0 B@1\nalt q B@0 A@1\n",
		"machine m\nop x latency 1 class other\n",
		"resource R\n",
		"machine m\nresource R\nalt a R@0\n",
		"machine m\nresource A@B\n",
		"; comment only\n",
		"machine m\nresource R\nop d latency 4 class div\nalt b R@0 R@1 R@2 R@3\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	if zoo, err := filepath.Glob(filepath.Join(zooDir, "*.mach")); err == nil {
		for _, path := range zoo {
			if src, err := os.ReadFile(path); err == nil {
				f.Add(string(src))
			}
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseMachine(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("rejection is not a *ParseError: %T %v", err, err)
			}
			if pe.Line < 0 || pe.Line > strings.Count(src, "\n")+1 {
				t.Fatalf("ParseError.Line %d outside input", pe.Line)
			}
			return
		}
		text := PrintMachine(m)
		m2, err := ParseMachine(text)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput:\n%s\nprinted:\n%s", err, src, text)
		}
		if m.Fingerprint() != m2.Fingerprint() {
			t.Fatalf("fingerprint changed across print/parse\nprinted:\n%s", text)
		}
		if text2 := PrintMachine(m2); text2 != text {
			t.Fatalf("PrintMachine is not a fixpoint:\n%s\n-- vs --\n%s", text, text2)
		}
	})
}
