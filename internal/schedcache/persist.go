package schedcache

import (
	"encoding/json"
	"errors"
	"fmt"

	"modsched/internal/core"
	"modsched/internal/diskcache"
	"modsched/internal/ir"
	"modsched/internal/machine"
)

// blobVersion gates the persisted schedule format. Bump it whenever the
// codec changes incompatibly: old entries then decode-fail, are marked
// corrupt, and recompile — never misdecode.
const blobVersion = 1

// blob is the persisted form of one cached compilation. Only the fields
// a schedule needs beyond the caller's own (loop, machine, options)
// survive: the issue times, alternatives, delays, bounds, the effort
// counters (responses replay them byte-for-byte), and the degradation
// report. Loop and machine pointers are rebound on load, exactly as an
// in-memory hit rebinds them.
type blob struct {
	V                       int
	II, MII, ResMII, Length int
	Times, Alts, Delays     []int
	Stats                   core.Counters
	DegStage                string
	DegFailures             []blobFailure
	HasDegradation          bool
}

// blobFailure is one StageFailure with its error flattened to a string.
// The reconstructed error renders identically (Degradation.String uses
// %v), which is all a cached degradation report is used for; the typed
// sentinels belong to live compiles.
type blobFailure struct {
	Stage string `json:"stage"`
	Error string `json:"error"`
}

// encodeBlob serializes a compilation result for the disk tier.
func encodeBlob(sched *core.Schedule, deg *core.Degradation) ([]byte, error) {
	b := blob{
		V:      blobVersion,
		II:     sched.II,
		MII:    sched.MII,
		ResMII: sched.ResMII,
		Length: sched.Length,
		Times:  sched.Times,
		Alts:   sched.Alts,
		Delays: sched.Delays,
		Stats:  sched.Stats,
	}
	if deg != nil {
		b.HasDegradation = true
		b.DegStage = deg.Stage
		for _, f := range deg.Failures {
			b.DegFailures = append(b.DegFailures, blobFailure{Stage: f.Stage, Error: f.Err.Error()})
		}
	}
	return json.Marshal(&b)
}

// decodeBlob reconstructs a schedule from its persisted form, rebound to
// the caller's loop and machine, and revalidates it: the shape must
// match the loop, and core.Check must certify the schedule legal against
// the live machine model. A payload that fails either is corrupt (or was
// written for a different format era) and must be evicted by the caller.
func decodeBlob(data []byte, l *ir.Loop, m *machine.Machine, opts core.Options) (*core.Schedule, *core.Degradation, error) {
	var b blob
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, nil, fmt.Errorf("schedcache: undecodable disk entry: %w", err)
	}
	if b.V != blobVersion {
		return nil, nil, fmt.Errorf("schedcache: disk entry format v%d, want v%d", b.V, blobVersion)
	}
	if len(b.Times) != len(l.Ops) || len(b.Alts) != len(l.Ops) {
		return nil, nil, errors.New("schedcache: disk entry shape does not match the loop")
	}
	sched := &core.Schedule{
		Loop:    l,
		Machine: m,
		Options: opts,
		II:      b.II,
		MII:     b.MII,
		ResMII:  b.ResMII,
		Times:   b.Times,
		Alts:    b.Alts,
		Delays:  b.Delays,
		Length:  b.Length,
		Stats:   b.Stats,
	}
	// The checksum already proved the bytes are what was written; Check
	// proves what was written is a legal schedule for THIS loop and
	// machine. A stale entry from a drifted machine model, or a key
	// collision, dies here instead of being served.
	if err := core.Check(sched); err != nil {
		return nil, nil, fmt.Errorf("schedcache: disk entry failed legality check: %w", err)
	}
	var deg *core.Degradation
	if b.HasDegradation {
		deg = &core.Degradation{Stage: b.DegStage}
		for _, f := range b.DegFailures {
			deg.Failures = append(deg.Failures, core.StageFailure{Stage: f.Stage, Err: errors.New(f.Error)})
		}
	}
	return sched, deg, nil
}

// AttachDisk mounts a persistent tier under the in-memory LRU. On a
// memory miss the disk is consulted before compiling: a verified disk
// entry is promoted into the LRU and served (counted in the store's
// Stats as a hit — the cache's own Misses still mean "compile
// executed"); a disk miss compiles and writes the result back, so
// restarts and cold replicas serve warm. Attach before serving traffic;
// the field is not synchronized against in-flight Do calls.
func (c *Cache) AttachDisk(d *diskcache.Store) { c.disk = d }

// DiskStats returns the attached store's counters (zero Stats when no
// disk tier is attached).
func (c *Cache) DiskStats() diskcache.Stats {
	if c.disk == nil {
		return diskcache.Stats{}
	}
	return c.disk.Stats()
}

// diskGet consults the persistent tier for key, reconstructing and
// revalidating the entry against the caller's loop and machine. An entry
// that fails decoding or legality is marked corrupt in the store
// (deleted and counted) and reported as a miss.
func (c *Cache) diskGet(key string, l *ir.Loop, m *machine.Machine, opts core.Options) (*core.Schedule, *core.Degradation, bool) {
	if c.disk == nil {
		return nil, nil, false
	}
	data, ok := c.disk.Get(key)
	if !ok {
		return nil, nil, false
	}
	sched, deg, err := decodeBlob(data, l, m, opts)
	if err != nil {
		c.disk.MarkCorrupt(key)
		return nil, nil, false
	}
	return sched, deg, true
}

// diskPut persists a freshly compiled result, best effort: a write
// failure is counted by the store and the compile is served from memory
// regardless.
func (c *Cache) diskPut(key string, sched *core.Schedule, deg *core.Degradation) {
	if c.disk == nil {
		return
	}
	data, err := encodeBlob(sched, deg)
	if err != nil {
		return
	}
	c.disk.Put(key, data)
}
