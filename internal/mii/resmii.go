// Package mii computes the minimum initiation interval lower bounds of
// Section 2 of the paper: the resource-constrained ResMII, the
// recurrence-constrained RecMII (via the MinDist matrix, per strongly
// connected component, with the doubling-then-binary-search strategy), and
// MII = max(ResMII, RecMII).
package mii

import (
	"fmt"
	"sort"

	"modsched/internal/ir"
	"modsched/internal/machine"
)

// Counters accumulates the work measurements used by the Table 4
// complexity analysis.
type Counters struct {
	// MinDistInner counts executions of the innermost loop of
	// ComputeMinDist (the Floyd-Warshall relaxation body).
	MinDistInner int64
	// MinDistCalls counts ComputeMinDist invocations.
	MinDistCalls int64
	// ResMIIInspections counts alternative reservation-table inspections
	// during the ResMII computation.
	ResMIIInspections int64
	// ProfileBuilds counts BuildProfile invocations (the one-time
	// II-independent coefficient factoring); ProfileProbes counts per-II
	// evaluations served from a Profile instead of a scalar
	// Floyd-Warshall closure.
	ProfileBuilds int64
	ProfileProbes int64
}

// ResMII computes the resource-constrained lower bound on the II
// (Section 2.1). Operations are taken in increasing order of their number
// of alternatives (degrees of freedom); for each, the alternative that
// minimizes the resulting most-used resource count is selected and its
// usage committed. The final most-used resource count is the ResMII.
//
// The returned choice slice maps each op index to the selected alternative
// (or -1 for pseudo-ops); it is advisory — the scheduler is free to pick
// differently.
func ResMII(l *ir.Loop, m *machine.Machine, c *Counters) (int, []int, error) {
	type entry struct {
		op   int
		alts []machine.Alternative
	}
	entries := make([]entry, 0, l.NumRealOps())
	choice := make([]int, l.NumOps())
	for i := range choice {
		choice[i] = -1
	}
	for _, op := range l.RealOps() {
		oc, ok := m.Opcode(op.Opcode)
		if !ok {
			return 0, nil, fmt.Errorf("mii: loop %s: unknown opcode %q", l.Name, op.Opcode)
		}
		if len(oc.Alternatives) == 1 && len(oc.Alternatives[0].Table.Uses) == 0 {
			continue // resource-free operation
		}
		entries = append(entries, entry{op: op.ID, alts: oc.Alternatives})
	}
	// Radix-like stable sort by number of alternatives, ascending; ties
	// keep program order for determinism.
	sort.SliceStable(entries, func(i, j int) bool {
		return len(entries[i].alts) < len(entries[j].alts)
	})

	usage := make([]int, m.NumResources())
	// perRes is a dense per-alternative usage count, reused across all
	// inspections; touched lists the entries to zero afterwards so the
	// inner loop stays allocation-free regardless of table size.
	perRes := make([]int, m.NumResources())
	touched := make([]machine.Resource, 0, 8)
	maxUsage := 0
	for _, e := range entries {
		bestAlt, bestPeak := -1, -1
		for ai, alt := range e.alts {
			if c != nil {
				c.ResMIIInspections++
			}
			peak := maxUsage
			// Peak usage if this alternative were committed.
			touched = touched[:0]
			for _, u := range alt.Table.Uses {
				if perRes[u.Resource] == 0 {
					touched = append(touched, u.Resource)
				}
				perRes[u.Resource]++
			}
			for _, r := range touched {
				if t := usage[r] + perRes[r]; t > peak {
					peak = t
				}
				perRes[r] = 0
			}
			if bestAlt == -1 || peak < bestPeak {
				bestAlt, bestPeak = ai, peak
			}
		}
		alt := e.alts[bestAlt]
		for _, u := range alt.Table.Uses {
			usage[u.Resource]++
			if usage[u.Resource] > maxUsage {
				maxUsage = usage[u.Resource]
			}
		}
		choice[e.op] = bestAlt
	}
	if maxUsage < 1 {
		maxUsage = 1
	}
	return maxUsage, choice, nil
}
