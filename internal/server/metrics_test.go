package server

import (
	"strings"
	"testing"
)

// TestPrometheusExposition pins the exposition's shape: every family
// present, label sets sorted, histogram buckets cumulative.
func TestPrometheusExposition(t *testing.T) {
	m := newMetrics()
	m.countRequest("compile", 200, 0.002)
	m.countRequest("compile", 422, 0.0001)
	m.countRequest("batch", 200, 0.3)
	m.countLoop("ok")
	m.countLoop("ok")
	m.countLoop("parse")
	m.countShed()

	var b strings.Builder
	m.writePrometheus(&b, gauges{inFlight: 3, queued: 1, draining: true, cacheLen: 7})
	text := b.String()

	for _, want := range []string{
		`mschedd_requests_total{endpoint="batch",code="200"} 1`,
		`mschedd_requests_total{endpoint="compile",code="200"} 1`,
		`mschedd_requests_total{endpoint="compile",code="422"} 1`,
		`mschedd_loops_total{outcome="ok"} 2`,
		`mschedd_loops_total{outcome="parse"} 1`,
		"mschedd_shed_total 1",
		"mschedd_in_flight 3",
		"mschedd_queue_depth 1",
		"mschedd_draining 1",
		"mschedd_cache_entries 7",
		"mschedd_request_duration_seconds_count 3",
		`mschedd_request_duration_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}

	// Sorted label sets: batch sorts before compile.
	if strings.Index(text, `endpoint="batch"`) > strings.Index(text, `endpoint="compile"`) {
		t.Error("requests_total series not sorted by endpoint")
	}

	// Buckets must be cumulative: 0.0001 lands in the first bucket, 0.002
	// by le=0.0025, 0.3 by le=0.5.
	for _, want := range []string{
		`mschedd_request_duration_seconds_bucket{le="0.0005"} 1`,
		`mschedd_request_duration_seconds_bucket{le="0.0025"} 2`,
		`mschedd_request_duration_seconds_bucket{le="0.5"} 3`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("histogram wrong, want %q:\n%s", want, text)
		}
	}

	// Two renders with no intervening traffic are byte-identical.
	var b2 strings.Builder
	m.writePrometheus(&b2, gauges{inFlight: 3, queued: 1, draining: true, cacheLen: 7})
	if b2.String() != text {
		t.Error("repeated render differs")
	}
}

func TestRetryAfterClamps(t *testing.T) {
	m := newMetrics()
	// No observations yet: minimum hint.
	if got := m.retryAfterSec(100, 4); got != 1 {
		t.Errorf("cold retryAfter = %d, want 1", got)
	}
	// 2s EWMA, 7 queued ahead, 4 slots -> ceil(2*8/4) = 4.
	m.countRequest("compile", 200, 2.0)
	if got := m.retryAfterSec(7, 4); got != 4 {
		t.Errorf("retryAfter = %d, want 4", got)
	}
	// Huge backlog clamps to 60.
	if got := m.retryAfterSec(100000, 1); got != 60 {
		t.Errorf("clamped retryAfter = %d, want 60", got)
	}
}
