package stress

import (
	"fmt"
	"math"
	"sort"

	"modsched/internal/codegen"
	"modsched/internal/core"
	"modsched/internal/ir"
	"modsched/internal/machine"
	"modsched/internal/vliw"
)

// This file holds the oracle layers the harness applies to every
// schedule, in escalation order:
//
//  1. core.Check   — structural legality (dependences, modulo resources);
//  2. RunKernel    — cycle-accurate simulation of kernel-only code,
//     compared against the sequential reference interpreter;
//  3. RunFlatAnyTrips — the explicit prologue/kernel/epilogue schema,
//     on a subset of cases (it shares most machinery with 2).
//
// Check catches schedules that violate their own invariants; simulation
// catches schedules that are internally consistent but semantically
// wrong (e.g. scheduled against a dependence graph missing an edge —
// see TestSimulatorCatchesLostFlowEdge).

// Spec builds a deterministic run specification for any loop: every
// register referenced anywhere gets an initial value spaced 32768 words
// apart, so concurrently-live address streams walk disjoint memory
// regions (loopgen assumes, but does not encode, that separate arrays
// do not alias). Memory starts empty; loads of untouched addresses read
// zero identically in both interpreters.
func Spec(l *ir.Loop, trips int64) vliw.RunSpec {
	init := make(map[ir.Reg]vliw.Word)
	add := func(r ir.Reg) {
		if r == ir.NoReg {
			return
		}
		if _, ok := init[r]; !ok {
			init[r] = float64(1<<16 + int(r)*32768)
		}
	}
	for _, op := range l.Ops {
		add(op.Dest)
		for _, r := range op.Srcs {
			add(r)
		}
		add(op.Pred)
	}
	return vliw.RunSpec{Init: init, Mem: map[int64]vliw.Word{}, Trips: trips}
}

// equalWord compares machine words NaN-tolerantly: both sides perform
// the identical float64 operations in the identical dataflow order, so
// agreement is normally bitwise, but overflow chains (Inf - Inf) may
// produce NaN on both sides and must compare equal.
func equalWord(a, b vliw.Word) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// diffResults compares a simulated execution against the reference,
// returning "" on agreement or a description of the first divergence
// (lowest memory address, then lowest register, for determinism).
func diffResults(ref, got *vliw.Result) string {
	addrs := make([]int64, 0, len(ref.Mem)+len(got.Mem))
	seen := make(map[int64]bool, len(ref.Mem)+len(got.Mem))
	for a := range ref.Mem {
		if !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	for a := range got.Mem {
		if !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if rv, gv := ref.Mem[a], got.Mem[a]; !equalWord(rv, gv) {
			return fmt.Sprintf("mem[%d] = %v, reference %v", a, gv, rv)
		}
	}

	regs := make([]int, 0, len(ref.Final))
	for r := range ref.Final {
		regs = append(regs, int(r))
	}
	sort.Ints(regs)
	for _, ri := range regs {
		r := ir.Reg(ri)
		gv, ok := got.Final[r]
		if !ok {
			return fmt.Sprintf("final r%d missing (reference %v)", r, ref.Final[r])
		}
		if !equalWord(ref.Final[r], gv) {
			return fmt.Sprintf("final r%d = %v, reference %v", r, gv, ref.Final[r])
		}
	}
	return ""
}

// simulateKernel runs kernel-only code for the schedule and compares it
// against the reference result. Returns "" on agreement.
func simulateKernel(s *core.Schedule, m *machine.Machine, spec vliw.RunSpec, ref *vliw.Result) string {
	kern, err := codegen.GenerateKernel(s)
	if err != nil {
		return fmt.Sprintf("codegen: %v", err)
	}
	got, err := vliw.RunKernel(kern, m, spec)
	if err != nil {
		return fmt.Sprintf("simulate: %v", err)
	}
	if d := diffResults(ref, got); d != "" {
		return fmt.Sprintf("kernel(trips=%d): %s", spec.Trips, d)
	}
	return ""
}

// simulateFlat runs the explicit prologue/kernel/epilogue schema (with
// preconditioning for arbitrary trip counts) and compares it against
// the reference result. Returns "" on agreement.
func simulateFlat(s *core.Schedule, l *ir.Loop, m *machine.Machine, spec vliw.RunSpec, ref *vliw.Result) string {
	got, err := vliw.RunFlatAnyTrips(l, m, s, spec)
	if err != nil {
		return fmt.Sprintf("flat: %v", err)
	}
	if d := diffResults(ref, got); d != "" {
		return fmt.Sprintf("flat(trips=%d): %s", spec.Trips, d)
	}
	return ""
}
