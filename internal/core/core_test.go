package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"modsched/internal/ir"
	"modsched/internal/machine"
	"modsched/internal/mii"
)

func build(t testing.TB, m *machine.Machine, f func(b *ir.Builder)) *ir.Loop {
	t.Helper()
	b := ir.NewBuilder("t", m)
	f(b)
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestScheduleAchievesMIIOnSimpleLoop(t *testing.T) {
	m := machine.Cydra5()
	l := build(t, m, func(b *ir.Builder) {
		x := b.Define("load", b.Invariant("p"))
		y := b.Define("fmul", x, b.Invariant("c"))
		b.Effect("store", b.Invariant("q"), y)
		b.Effect("brtop")
	})
	s, err := ModuloSchedule(l, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.II != s.MII {
		t.Errorf("II=%d MII=%d: simple loop must achieve MII", s.II, s.MII)
	}
	if s.II != 1 {
		t.Errorf("II=%d, want 1 (one op per unit)", s.II)
	}
}

func TestScheduleRespectsRecurrence(t *testing.T) {
	m := machine.Cydra5()
	l := build(t, m, func(b *ir.Builder) {
		s := b.Future()
		b.DefineAs(s, "fadd", s.Back(1), b.Invariant("x"))
		b.Effect("brtop")
	})
	s, err := ModuloSchedule(l, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 4 {
		t.Errorf("accumulator II=%d, want 4 (fadd latency)", s.II)
	}
}

func TestSTARTPinnedAtZeroAndSLIsStop(t *testing.T) {
	m := machine.Cydra5()
	l := build(t, m, func(b *ir.Builder) {
		x := b.Define("load", b.Invariant("p"))
		b.Define("fadd", x, x)
		b.Effect("brtop")
	})
	s, err := ModuloSchedule(l, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.Times[l.Start()] != 0 {
		t.Error("START must stay at time 0")
	}
	if s.Length != s.Times[l.Stop()] {
		t.Error("Length must equal STOP's time")
	}
	// SL covers the load->fadd critical path: 20 + 4.
	if s.Length < 24 {
		t.Errorf("SL = %d, want >= 24", s.Length)
	}
}

func TestBudgetTooSmallRaisesII(t *testing.T) {
	m := machine.Cydra5()
	mk := func() *ir.Loop {
		return build(t, m, func(b *ir.Builder) {
			a := b.Invariant("a")
			vals := make([]ir.Value, 0, 8)
			for i := 0; i < 4; i++ {
				vals = append(vals, b.Define("fadd", a, a))
				vals = append(vals, b.Define("fmul", a, a))
			}
			x := vals[0]
			for _, v := range vals[1:] {
				x = b.Define("fadd", x, v)
			}
			b.Effect("brtop")
		})
	}
	big := DefaultOptions()
	big.BudgetRatio = 8
	sBig, err := ModuloSchedule(mk(), m, big)
	if err != nil {
		t.Fatal(err)
	}
	small := DefaultOptions()
	small.BudgetRatio = 1.01
	sSmall, err := ModuloSchedule(mk(), m, small)
	if err != nil {
		t.Fatal(err)
	}
	if sSmall.II < sBig.II {
		t.Errorf("smaller budget yielded better II (%d < %d)?", sSmall.II, sBig.II)
	}
	if sSmall.Stats.IIAttempts < sBig.Stats.IIAttempts {
		t.Errorf("smaller budget should need at least as many II attempts")
	}
}

func TestEvictionHappensOnContendedLoop(t *testing.T) {
	m := machine.Cydra5()
	// Mixed adds/muls contending for the shared buses force displacement.
	l := build(t, m, func(b *ir.Builder) {
		a := b.Invariant("a")
		var last ir.Value
		for i := 0; i < 6; i++ {
			last = b.Define("fadd", a, a)
			last = b.Define("fmul", last, a)
		}
		_ = last
		b.Effect("brtop")
	})
	opts := DefaultOptions()
	opts.BudgetRatio = 6
	s, err := ModuloSchedule(l, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.SchedSteps <= int64(l.NumOps()) && s.Stats.Unschedules == 0 && s.II == s.MII {
		t.Log("no eviction needed; acceptable but unexpected on this machine")
	}
	if err := Check(s); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCatchesViolations(t *testing.T) {
	m := machine.Cydra5()
	l := build(t, m, func(b *ir.Builder) {
		x := b.Define("load", b.Invariant("p"))
		y := b.Define("fadd", x, x)
		b.Effect("store", b.Invariant("q"), y)
		b.Effect("brtop")
	})
	s, err := ModuloSchedule(l, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Dependence violation: move the fadd to issue with its producer.
	bad := *s
	bad.Times = append([]int(nil), s.Times...)
	bad.Times[2] = bad.Times[1]
	if err := Check(&bad); err == nil || !strings.Contains(err.Error(), "violated") {
		t.Errorf("dependence violation not caught: %v", err)
	}

	// Resource violation: two loads on the same port same modulo slot.
	l2 := build(t, m, func(b *ir.Builder) {
		b.Define("load", b.Invariant("p"))
		b.Define("load", b.Invariant("p"))
		b.Effect("brtop")
	})
	s2, err := ModuloSchedule(l2, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bad2 := *s2
	bad2.Alts = append([]int(nil), s2.Alts...)
	bad2.Times = append([]int(nil), s2.Times...)
	bad2.Alts[1] = s2.Alts[2]   // both loads on the same port...
	bad2.Times[1] = s2.Times[2] // ...in the same cycle
	if err := Check(&bad2); err == nil || !strings.Contains(err.Error(), "oversubscribes") {
		t.Errorf("resource violation not caught: %v", err)
	}

	// Unscheduled op.
	bad3 := *s
	bad3.Times = append([]int(nil), s.Times...)
	bad3.Times[1] = -1
	if err := Check(&bad3); err == nil {
		t.Error("unscheduled op not caught")
	}

	// Bad II.
	bad4 := *s
	bad4.II = 0
	if err := Check(&bad4); err == nil {
		t.Error("II=0 not caught")
	}
}

func TestPriorityKindsAllProduceValidSchedules(t *testing.T) {
	m := machine.Cydra5()
	rng := rand.New(rand.NewSource(3))
	for _, pk := range []PriorityKind{PriorityHeightR, PriorityFIFO, PriorityDepth, PriorityRecFirst} {
		for trial := 0; trial < 15; trial++ {
			l := randomLoop(t, m, rng)
			opts := DefaultOptions()
			opts.Priority = pk
			opts.BudgetRatio = 6
			s, err := ModuloSchedule(l, m, opts)
			if err != nil {
				t.Fatalf("%v trial %d: %v", pk, trial, err)
			}
			if err := Check(s); err != nil {
				t.Fatalf("%v trial %d: %v", pk, trial, err)
			}
		}
	}
}

func TestHeightRBeatsNaivePrioritiesOnAverage(t *testing.T) {
	m := machine.Cydra5()
	rng := rand.New(rand.NewSource(99))
	var sumHR, sumFIFO int64
	for trial := 0; trial < 60; trial++ {
		l := randomLoop(t, m, rng)
		for _, pk := range []PriorityKind{PriorityHeightR, PriorityFIFO} {
			opts := DefaultOptions()
			opts.Priority = pk
			s, err := ModuloSchedule(l, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			if pk == PriorityHeightR {
				sumHR += int64(s.II)
			} else {
				sumFIFO += int64(s.II)
			}
		}
	}
	if sumHR > sumFIFO {
		t.Errorf("HeightR total II %d worse than FIFO %d", sumHR, sumFIFO)
	}
}

func TestConservativeDelaysNeverBelowVLIW(t *testing.T) {
	m := machine.Cydra5()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		l := randomLoop(t, m, rng)
		iis := map[ir.DelayModel]int{}
		for _, dm := range []ir.DelayModel{ir.VLIWDelays, ir.ConservativeDelays} {
			opts := DefaultOptions()
			opts.DelayModel = dm
			opts.BudgetRatio = 6
			s, err := ModuloSchedule(l, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := Check(s); err != nil {
				t.Fatal(err)
			}
			iis[dm] = s.MII
		}
		// Conservative delays are >= VLIW delays edge-wise, so the
		// recurrence bound (and hence MII) cannot be smaller.
		if iis[ir.ConservativeDelays] < iis[ir.VLIWDelays] {
			t.Errorf("trial %d: conservative MII %d < VLIW MII %d", trial,
				iis[ir.ConservativeDelays], iis[ir.VLIWDelays])
		}
	}
}

func TestRestartAblationValidButWeaker(t *testing.T) {
	m := machine.Cydra5()
	rng := rand.New(rand.NewSource(23))
	var evict, restart int64
	for trial := 0; trial < 40; trial++ {
		l := randomLoop(t, m, rng)
		for _, r := range []bool{false, true} {
			opts := DefaultOptions()
			opts.RestartOnFailure = r
			s, err := ModuloSchedule(l, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := Check(s); err != nil {
				t.Fatal(err)
			}
			if r {
				restart += int64(s.II)
			} else {
				evict += int64(s.II)
			}
		}
	}
	if evict > restart {
		t.Errorf("eviction total II %d worse than restart %d", evict, restart)
	}
}

func TestMaxIICapRespected(t *testing.T) {
	m := machine.Cydra5()
	l := build(t, m, func(b *ir.Builder) {
		s := b.Future()
		b.DefineAs(s, "fadd", s.Back(1), b.Invariant("x")) // MII 4
		b.Effect("brtop")
	})
	opts := DefaultOptions()
	opts.MaxII = 2
	if _, err := ModuloSchedule(l, m, opts); err == nil {
		t.Error("MaxII below MII must fail")
	}
}

// randomLoop builds a schedulable random loop mixing streams, arithmetic,
// recurrences and predication.
func randomLoop(t testing.TB, m *machine.Machine, rng *rand.Rand) *ir.Loop {
	t.Helper()
	b := ir.NewBuilder("rand", m)
	var vals []ir.Value
	pick := func() ir.Value {
		if len(vals) == 0 || rng.Float64() < 0.25 {
			return b.Invariant("inv")
		}
		return vals[rng.Intn(len(vals))]
	}
	nStream := 1 + rng.Intn(3)
	for i := 0; i < nStream; i++ {
		ai := b.Future()
		b.DefineAsImm(ai, "aadd", 24, ai.Back(3))
		vals = append(vals, b.Define("load", ai))
	}
	if rng.Float64() < 0.5 {
		s := b.Future()
		ln := 1 + rng.Intn(3)
		prev := s.Back(1 + rng.Intn(2))
		for i := 0; i < ln; i++ {
			if i == ln-1 {
				prev = b.DefineAs(s, "fadd", prev, pick())
			} else {
				prev = b.Define("fmul", prev, pick())
			}
			vals = append(vals, prev)
		}
	}
	if rng.Float64() < 0.4 {
		p := b.Define("cmp", pick(), b.Invariant("lim"))
		vals = append(vals, p)
		b.SetPred(p)
		vals = append(vals, b.Define("fadd", pick(), pick()))
		b.ClearPred()
	}
	for i := rng.Intn(6); i > 0; i-- {
		ops := []string{"fadd", "fmul", "add", "sub"}
		vals = append(vals, b.Define(ops[rng.Intn(len(ops))], pick(), pick()))
	}
	si := b.Future()
	b.DefineAsImm(si, "aadd", 24, si.Back(3))
	b.Effect("store", si, pick())
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestScheduleValidityProperty: any random loop's schedule passes the
// independent checker, achieves II >= MII >= ResMII, and schedules every
// op at least once within budget accounting.
func TestScheduleValidityProperty(t *testing.T) {
	m := machine.Cydra5()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLoop(t, m, rng)
		s, err := ModuloSchedule(l, m, DefaultOptions())
		if err != nil {
			return false
		}
		if Check(s) != nil {
			return false
		}
		if _, err := ir.Delays(l, m, ir.VLIWDelays); err != nil {
			return false
		}
		res, _, err := mii.ResMII(l, m, nil)
		if err != nil {
			return false
		}
		return s.II >= s.MII && s.MII >= res &&
			s.Stats.SchedStepsFinal >= int64(l.NumOps())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestScheduleDeterminism: the scheduler is deterministic for a fixed
// input.
func TestScheduleDeterminism(t *testing.T) {
	m := machine.Cydra5()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		l := randomLoop(t, m, rng)
		a, err := ModuloSchedule(l, m, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b, err := ModuloSchedule(l, m, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if a.II != b.II || a.Length != b.Length {
			t.Fatalf("nondeterministic: II %d/%d SL %d/%d", a.II, b.II, a.Length, b.Length)
		}
		for i := range a.Times {
			if a.Times[i] != b.Times[i] || a.Alts[i] != b.Alts[i] {
				t.Fatalf("nondeterministic placement of op %d", i)
			}
		}
	}
}

func TestGenericMachinesScheduleEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, m := range []*machine.Machine{machine.Tiny(), machine.Generic(machine.DefaultUnitConfig())} {
		for trial := 0; trial < 25; trial++ {
			l := randomLoop(t, m, rng)
			s, err := ModuloSchedule(l, m, DefaultOptions())
			if err != nil {
				t.Fatalf("%s trial %d: %v", m.Name, trial, err)
			}
			if err := Check(s); err != nil {
				t.Fatalf("%s trial %d: %v", m.Name, trial, err)
			}
		}
	}
}

func TestStageCount(t *testing.T) {
	s := &Schedule{II: 4, Length: 9}
	if s.StageCount() != 3 {
		t.Errorf("StageCount = %d, want 3", s.StageCount())
	}
	s = &Schedule{II: 4, Length: 8}
	if s.StageCount() != 2 {
		t.Errorf("StageCount = %d, want 2", s.StageCount())
	}
	s = &Schedule{II: 4, Length: 0}
	if s.StageCount() != 1 {
		t.Errorf("StageCount = %d, want 1 (minimum)", s.StageCount())
	}
}
