package ifconv

import (
	"math/rand"
	"testing"

	"modsched/internal/ir"
	"modsched/internal/machine"
	"modsched/internal/vliw"
)

// predicatedLoop builds a hand-predicated loop with a guarded store and a
// guarded accumulator.
func predicatedLoop(t testing.TB, m *machine.Machine) (*ir.Loop, *ir.Builder) {
	t.Helper()
	b := ir.NewBuilder("predloop", m)
	xi := b.Future()
	b.DefineAsImm(xi, "aadd", 8, xi.Back(1))
	x := b.Define("load", xi)
	p := b.Define("cmp", x, b.Invariant("lim"))
	b.SetPred(p)
	s := b.Future()
	b.DefineAs(s, "fadd", s.Back(1), x)
	si := b.Future()
	b.DefineAsImm(si, "aadd", 8, si.Back(1))
	b.Effect("store", si, x)
	b.ClearPred()
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return l, b
}

func TestReverseGroupsGuardedOps(t *testing.T) {
	m := machine.Cydra5()
	l, _ := predicatedLoop(t, m)
	rgn, _, err := ReverseIfConvert(l, true)
	if err != nil {
		t.Fatal(err)
	}
	// The three consecutive guarded ops must fold into one If with three
	// statements; nothing in the region may carry predication.
	ifCount, ifLen := 0, 0
	for _, st := range rgn.Stmts {
		if iff, ok := st.(If); ok {
			ifCount++
			ifLen = len(iff.Then)
		}
	}
	if ifCount != 1 || ifLen != 3 {
		t.Errorf("want one If with 3 stmts, got %d Ifs (last len %d)", ifCount, ifLen)
	}
}

func TestReverseMatchesReference(t *testing.T) {
	m := machine.Cydra5()
	l, b := predicatedLoop(t, m)
	const trips = 20
	mem := map[int64]float64{}
	for i := int64(0); i < trips; i++ {
		mem[1000+8*(i+1)] = float64((i * 3) % 7)
	}
	init := map[ir.Reg]float64{}
	for _, v := range []ir.Value{} {
		_ = v
	}
	// Collect registers from the builder.
	var xi, s, si, lim ir.Reg
	for _, op := range l.RealOps() {
		switch op.Opcode {
		case "aadd":
			if xi == 0 {
				xi = op.Dest
			} else {
				si = op.Dest
			}
		case "fadd":
			s = op.Dest
		case "cmp":
			lim = op.Srcs[1]
		}
	}
	_ = b
	init[xi] = 1000
	init[si] = 9000
	init[s] = 0
	init[lim] = 4
	spec := vliw.RunSpec{Init: init, Mem: mem, Trips: trips}
	ref, err := vliw.RunReference(l, spec)
	if err != nil {
		t.Fatal(err)
	}

	for _, expandSel := range []bool{false, true} {
		rgn, names, err := ReverseIfConvert(l, expandSel)
		if err != nil {
			t.Fatal(err)
		}
		sspec := SpecFromRunSpec(names, init, nil, mem, trips)
		got, err := RunStructured(rgn, sspec)
		if err != nil {
			t.Fatal(err)
		}
		for a, want := range ref.Mem {
			if g := got.Mem[a]; g != want {
				t.Fatalf("expandSel=%v: mem[%d] = %v, want %v", expandSel, a, g, want)
			}
		}
		for a := range got.Mem {
			if _, ok := ref.Mem[a]; !ok {
				t.Fatalf("expandSel=%v: stray write mem[%d]", expandSel, a)
			}
		}
	}
}

// TestRoundTripConvertReverse: Convert(ReverseIfConvert(Convert(region)))
// preserves semantics — the two transformations are mutual inverses up to
// renaming.
func TestRoundTripConvertReverse(t *testing.T) {
	m := machine.Cydra5()
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		rgn, spec := randomRegion(rng, 8+int64(rng.Intn(12)))
		want, err := RunStructured(rgn, spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Convert(rgn, m)
		if err != nil {
			t.Fatal(err)
		}
		back, names, err := ReverseIfConvert(res.Loop, true)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rs := res.ToRunSpec(spec)
		bspec := SpecFromRunSpec(names, rs.Init, rs.InitHist, spec.Mem, spec.Trips)
		got, err := RunStructured(back, bspec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for a, w := range want.Mem {
			if g := got.Mem[a]; g != w {
				t.Fatalf("trial %d: mem[%d] = %v, want %v", trial, a, g, w)
			}
		}
		// The reverse form must be convertible again and still agree.
		res2, err := Convert(back, m)
		if err != nil {
			t.Fatalf("trial %d: reconvert: %v", trial, err)
		}
		rspec2 := res2.ToRunSpec(bspec.toNamed())
		ref2, err := vliw.RunReference(res2.Loop, rspec2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for a, w := range want.Mem {
			if g := ref2.Mem[a]; g != w {
				t.Fatalf("trial %d: reconverted mem[%d] = %v, want %v", trial, a, g, w)
			}
		}
	}
}

// toNamed is an identity helper so the reconversion uses the same Spec.
func (s Spec) toNamed() Spec { return s }

func TestReverseRejectsDistancePredicates(t *testing.T) {
	m := machine.Cydra5()
	b := ir.NewBuilder("badpred", m)
	p := b.Future()
	b.DefineAs(p, "cmp", b.Invariant("a"), b.Invariant("bb"))
	b.SetPred(p.Back(1))
	b.Define("copy", b.Invariant("c"))
	b.ClearPred()
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReverseIfConvert(l, false); err == nil {
		t.Error("distance-1 predicate accepted")
	}
}
