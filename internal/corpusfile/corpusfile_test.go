package corpusfile

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// writeCorpus shards records with the canonical contiguous split and
// returns one buffer per shard.
func writeCorpus(t *testing.T, records [][]byte, shards int, seed int64) []*bytes.Buffer {
	t.Helper()
	counts := ShardCounts(len(records), shards)
	bufs := make([]*bytes.Buffer, shards)
	next := 0
	for s := 0; s < shards; s++ {
		bufs[s] = &bytes.Buffer{}
		w, err := NewWriter(bufs[s], Header{
			Shard: s, Shards: shards, Seed: seed,
			Count: counts[s], First: next, Total: len(records),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < counts[s]; i++ {
			if err := w.Add(records[next+i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		next += counts[s]
	}
	return bufs
}

func testRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("loop %04d {\n  body of loop %d\n}\n", i, i))
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	records := testRecords(23)
	bufs := writeCorpus(t, records, 4, 77)

	var hs []Header
	got := 0
	for s, buf := range bufs {
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		h := r.Header()
		hs = append(hs, h)
		if h.Shard != s || h.Shards != 4 || h.Seed != 77 || h.Total != len(records) {
			t.Fatalf("shard %d header %+v", s, h)
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rec, records[got]) {
				t.Fatalf("record %d mismatch:\ngot  %q\nwant %q", got, rec, records[got])
			}
			got++
		}
	}
	if got != len(records) {
		t.Fatalf("read %d records, want %d", got, len(records))
	}
	if err := ValidateSet(hs); err != nil {
		t.Fatal(err)
	}
}

// TestShardingInvariant pins the format's core property: the record
// payload bytes, concatenated in shard order, are identical no matter
// how many shards the corpus was split into.
func TestShardingInvariant(t *testing.T) {
	records := testRecords(37)
	concat := func(shards int) []byte {
		var out bytes.Buffer
		for _, buf := range writeCorpus(t, records, shards, 5) {
			r, err := NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			for {
				rec, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				out.Write(rec)
			}
		}
		return out.Bytes()
	}
	one := concat(1)
	for _, shards := range []int{2, 4, 16, 37} {
		if !bytes.Equal(one, concat(shards)) {
			t.Fatalf("record bytes differ between 1 shard and %d shards", shards)
		}
	}
}

func TestSkip(t *testing.T) {
	records := testRecords(9)
	buf := writeCorpus(t, records, 1, 1)[0]
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Skip even records, read odd ones.
	for i := 0; i < len(records); i++ {
		if i%2 == 0 {
			if err := r.Skip(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec, records[i]) {
			t.Fatalf("record %d mismatch after skips", i)
		}
	}
	if err := r.Skip(); err != io.EOF {
		t.Fatalf("Skip past end = %v, want io.EOF", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next past end = %v, want io.EOF", err)
	}
}

func TestWriterCountEnforced(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Shard: 0, Shards: 1, Count: 2, First: 0, Total: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close accepted a short shard")
	}
	if err := w.Add([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]byte("c")); err == nil {
		t.Fatal("Add accepted an overfull shard")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptInputs(t *testing.T) {
	records := testRecords(3)
	good := writeCorpus(t, records, 1, 1)[0].Bytes()

	if _, err := NewReader(bytes.NewReader([]byte("NOTACORP"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated mid-record: Next must fail, not hang or return short data.
	trunc := good[:len(good)-5]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < len(records); i++ {
		if _, lastErr = r.Next(); lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("truncated shard read cleanly")
	}
	// Mismatched shard-set provenance.
	hs := []Header{
		{Shard: 0, Shards: 2, Seed: 1, Count: 1, First: 0, Total: 2},
		{Shard: 1, Shards: 2, Seed: 9, Count: 1, First: 1, Total: 2},
	}
	if err := ValidateSet(hs); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	hs[1].Seed = 1
	hs[1].First = 0
	if err := ValidateSet(hs); err == nil {
		t.Fatal("non-contiguous firsts accepted")
	}
	hs[1].First = 1
	if err := ValidateSet(hs); err != nil {
		t.Fatal(err)
	}
}

func TestShardCounts(t *testing.T) {
	for _, tc := range []struct {
		total, shards int
		want          []int
	}{
		{10, 3, []int{4, 3, 3}},
		{3, 4, []int{1, 1, 1, 0}},
		{0, 2, []int{0, 0}},
		{7, 1, []int{7}},
	} {
		got := ShardCounts(tc.total, tc.shards)
		if len(got) != len(tc.want) {
			t.Fatalf("ShardCounts(%d,%d) = %v", tc.total, tc.shards, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("ShardCounts(%d,%d) = %v, want %v", tc.total, tc.shards, got, tc.want)
			}
		}
	}
}
