package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoExecutor completes each job with a 200 outcome embedding its
// payload, optionally blocking on gate first.
func echoExecutor(gate <-chan struct{}) Executor {
	return func(ctx context.Context, tenant string, payload json.RawMessage) (json.RawMessage, bool) {
		if gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, false
			}
		}
		out, _ := json.Marshal(map[string]any{"status": 200, "tenant": tenant, "payload": payload})
		return out, true
	}
}

func expired504(payload json.RawMessage) json.RawMessage {
	return json.RawMessage(`{"status":504,"error":{"kind":"deadline"}}`)
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Execute == nil {
		cfg.Execute = echoExecutor(nil)
	}
	if cfg.ExpiredOutcome == nil {
		cfg.ExpiredOutcome = expired504
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

func TestSubmitRunWait(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	id := testID(1)
	st, dup, err := m.Submit(id, "acme", json.RawMessage(`{"n":1}`), time.Time{})
	if err != nil || dup {
		t.Fatalf("Submit: dup=%v err=%v", dup, err)
	}
	if st.ID != id || st.Tenant != "acme" {
		t.Fatalf("status: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fin, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("state %q, want done", fin.State)
	}
	var out struct {
		Status  int             `json:"status"`
		Tenant  string          `json:"tenant"`
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(fin.Outcome, &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != 200 || out.Tenant != "acme" || string(out.Payload) != `{"n":1}` {
		t.Fatalf("outcome: %+v", out)
	}
	// Get after terminal returns the same thing.
	got, err := m.Get(id)
	if err != nil || got.State != StateDone {
		t.Fatalf("Get: %+v err=%v", got, err)
	}
	if _, err := m.Get(testID(99)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown: %v", err)
	}
	c := m.Counters()
	if c.Submitted != 1 || c.Completed != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestSubmitDedupes(t *testing.T) {
	gate := make(chan struct{})
	m := newTestManager(t, Config{Workers: 1, Execute: echoExecutor(gate)})
	id := testID(2)
	if _, dup, err := m.Submit(id, "a", json.RawMessage(`{}`), time.Time{}); err != nil || dup {
		t.Fatalf("first: dup=%v err=%v", dup, err)
	}
	// Same id again while queued/running: no new journal entry, dup=true.
	st, dup, err := m.Submit(id, "a", json.RawMessage(`{}`), time.Time{})
	if err != nil || !dup {
		t.Fatalf("second: dup=%v err=%v", dup, err)
	}
	if st.ID != id {
		t.Fatalf("dup status: %+v", st)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	// And again after completion: still the same job, outcome included.
	fin, dup, err := m.Submit(id, "a", json.RawMessage(`{}`), time.Time{})
	if err != nil || !dup || fin.State != StateDone || len(fin.Outcome) == 0 {
		t.Fatalf("post-terminal resubmit: %+v dup=%v err=%v", fin, dup, err)
	}
	if c := m.Counters(); c.Submitted != 1 || c.Deduped != 2 {
		t.Fatalf("counters: %+v", c)
	}
	if js := m.JournalStats(); js.Appends != 1 {
		t.Fatalf("journal appends = %d, want 1", js.Appends)
	}
}

func TestFailedOutcomeState(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, Execute: func(ctx context.Context, tenant string, p json.RawMessage) (json.RawMessage, bool) {
		return json.RawMessage(`{"status":422,"error":{"kind":"parse"}}`), true
	}})
	id := testID(3)
	if _, _, err := m.Submit(id, "a", json.RawMessage(`{}`), time.Time{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fin, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed {
		t.Fatalf("state %q, want failed", fin.State)
	}
	if c := m.Counters(); c.Failed != 1 || c.Completed != 0 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestTokenBucketQuota(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	m := newTestManager(t, Config{
		Workers: 1,
		Tenants: map[string]TenantConfig{"limited": {Rate: 1, Burst: 2}},
		Now:     now,
	})
	// Burst of 2 admits two, third is over quota with a retry hint.
	for i := 0; i < 2; i++ {
		if _, _, err := m.Submit(testID(10+i), "limited", json.RawMessage(`{}`), time.Time{}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, _, err := m.Submit(testID(12), "limited", json.RawMessage(`{}`), time.Time{})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("want QuotaError, got %v", err)
	}
	if qe.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %v, want >= 1s", qe.RetryAfter)
	}
	// Unlimited tenants are unaffected.
	if _, _, err := m.Submit(testID(13), "other", json.RawMessage(`{}`), time.Time{}); err != nil {
		t.Fatalf("unlimited tenant: %v", err)
	}
	// After the clock advances, the bucket refills.
	clock = clock.Add(1500 * time.Millisecond)
	if _, _, err := m.Submit(testID(14), "limited", json.RawMessage(`{}`), time.Time{}); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if c := m.Counters(); c.RejectQuota != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestQueueFull(t *testing.T) {
	gate := make(chan struct{})
	m := newTestManager(t, Config{Workers: 1, MaxQueued: 2, Execute: echoExecutor(gate)})
	defer close(gate)
	for i := 0; i < 2; i++ {
		if _, _, err := m.Submit(testID(20+i), "a", json.RawMessage(`{}`), time.Time{}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, _, err := m.Submit(testID(22), "a", json.RawMessage(`{}`), time.Time{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if c := m.Counters(); c.RejectFull != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestStrideFairness pins the dispatch interleaving: with bulk (weight
// 1) and interactive (weight 10) both backlogged, every window of 11
// consecutive dispatches contains ~10 interactive jobs, so interactive
// jobs are never stuck behind the bulk backlog.
func TestStrideFairness(t *testing.T) {
	gate := make(chan struct{})
	m := newTestManager(t, Config{
		Workers: 1,
		Execute: echoExecutor(gate),
		Tenants: map[string]TenantConfig{
			"bulk":        {Weight: 1},
			"interactive": {Weight: 10},
		},
	})
	// Submit the full backlog before any job can run: 110 bulk, 20
	// interactive. The single gated worker guarantees nothing dispatches
	// until the gate opens, making the order purely the stride policy's.
	var bulkIDs, intIDs []string
	for i := 0; i < 110; i++ {
		id := testID(1000 + i)
		bulkIDs = append(bulkIDs, id)
		if _, _, err := m.Submit(id, "bulk", json.RawMessage(`{}`), time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		id := testID(2000 + i)
		intIDs = append(intIDs, id)
		if _, _, err := m.Submit(id, "interactive", json.RawMessage(`{}`), time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range append(append([]string(nil), bulkIDs...), intIDs...) {
		if _, err := m.Wait(ctx, id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}

	// With stride 1:10, interactive's 20 jobs should all dispatch within
	// the first ~22 slots of interleaved service plus bursting slack —
	// far before the 110 bulk jobs finish. Assert the last interactive
	// dispatch lands in the first half of all dispatches, and that bulk
	// never runs 3+ consecutive slots while interactive still has work.
	var maxInt int64
	for _, id := range intIDs {
		if s := m.DispatchSeq(id); s > maxInt {
			maxInt = s
		}
	}
	total := int64(len(bulkIDs) + len(intIDs))
	if maxInt == 0 || maxInt > total/2 {
		t.Fatalf("last interactive dispatch at seq %d of %d — bulk starved interactive", maxInt, total)
	}
	// Count bulk dispatches that happened before the last interactive
	// one: stride 10:1 should allow at most ~1 bulk per 10 interactive,
	// plus the initial activation offset.
	var bulkBefore int64
	for _, id := range bulkIDs {
		if s := m.DispatchSeq(id); s != 0 && s < maxInt {
			bulkBefore++
		}
	}
	if bulkBefore > 6 {
		t.Fatalf("%d bulk jobs dispatched before interactive finished; want <= 6 under 10:1 weights", bulkBefore)
	}
}

// TestDeadlineExpiry covers both expiry paths: lazily observed by Get
// while queued, and caught at dispatch time.
func TestDeadlineExpiry(t *testing.T) {
	var clock atomic.Int64
	clock.Store(time.Unix(1000, 0).UnixNano())
	now := func() time.Time { return time.Unix(0, clock.Load()) }
	gate := make(chan struct{})
	m := newTestManager(t, Config{Workers: 1, Execute: echoExecutor(gate), Now: now})
	defer close(gate)

	// Occupy the worker so subsequent jobs sit in queue.
	if _, _, err := m.Submit(testID(30), "a", json.RawMessage(`{}`), time.Time{}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m)

	deadline := now().Add(50 * time.Millisecond)
	id := testID(31)
	if _, _, err := m.Submit(id, "a", json.RawMessage(`{}`), deadline); err != nil {
		t.Fatal(err)
	}
	clock.Add(int64(time.Second)) // deadline now long past
	st, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateExpired {
		t.Fatalf("state %q, want expired", st.State)
	}
	var out struct {
		Status int `json:"status"`
	}
	if err := json.Unmarshal(st.Outcome, &out); err != nil || out.Status != 504 {
		t.Fatalf("expired outcome: %s err=%v", st.Outcome, err)
	}
	if c := m.Counters(); c.Expired != 1 {
		t.Fatalf("counters: %+v", c)
	}

	// The expired record is terminal on disk too.
	// (Shut down cleanly first so reopening is race-free.)
}

func waitRunning(t *testing.T, m *Manager) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Counters().Running > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no job reached running state")
}

// TestCrashRecovery is the in-process chaos test: Kill mid-queue, prove
// the journal re-seats everything, every job completes, and completed
// outcomes are byte-identical to an uninterrupted run.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	exec := func(ctx context.Context, tenant string, payload json.RawMessage) (json.RawMessage, bool) {
		select {
		case <-ctx.Done():
			return nil, false
		case <-time.After(time.Millisecond):
		}
		out, _ := json.Marshal(map[string]any{"status": 200, "payload": payload})
		return out, true
	}

	m1, err := New(Config{Dir: dir, Workers: 2, Execute: exec, ExpiredOutcome: expired504})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = testID(3000 + i)
		if _, _, err := m1.Submit(ids[i], fmt.Sprintf("tenant%d", i%3), json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)), time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	// Let some jobs complete, then kill with work still queued.
	time.Sleep(5 * time.Millisecond)
	m1.Kill()

	m2, err := New(Config{Dir: dir, Workers: 4, Execute: exec, ExpiredOutcome: expired504})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m2.Close(ctx)
	}()
	if c := m2.Counters(); c.Recovered != n {
		t.Fatalf("recovered %d of %d journaled jobs", c.Recovered, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, id := range ids {
		st, err := m2.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != StateDone {
			t.Fatalf("job %d state %q after recovery", i, st.State)
		}
		want := fmt.Sprintf(`{"payload":{"n":%d},"status":200}`, i)
		if string(st.Outcome) != want {
			t.Fatalf("job %d outcome %s, want %s", i, st.Outcome, want)
		}
	}
	// Exactly-once: jobs finished before the kill were recovered
	// terminal, not re-run; total completions across both lives is n
	// with no double-counting on disk.
	_, recs, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("%d records on disk, want %d", len(recs), n)
	}
	for _, r := range recs {
		if r.State != StateDone {
			t.Errorf("record %s state %q on disk", r.ID[:8], r.State)
		}
	}
}

// TestDrainLeavesQueuedJobsJournaled pins the drain contract: running
// jobs finish, queued jobs stay on disk as queued for the next start.
func TestDrainLeavesQueuedJobsJournaled(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	exec := func(ctx context.Context, tenant string, payload json.RawMessage) (json.RawMessage, bool) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, false
		}
		return json.RawMessage(`{"status":200}`), true
	}
	m, err := New(Config{Dir: dir, Workers: 1, Execute: exec, ExpiredOutcome: expired504})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit(testID(40), "a", json.RawMessage(`{}`), time.Time{}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m)
	if _, _, err := m.Submit(testID(41), "a", json.RawMessage(`{}`), time.Time{}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	closeErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closeErr <- m.Close(ctx)
	}()
	// New submissions are refused once draining. A fresh id per attempt:
	// a repeated id would dedupe against its own earlier success and
	// never observe the refusal.
	drainDeadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		_, _, err := m.Submit(testID(100+i), "a", json.RawMessage(`{}`), time.Time{})
		if errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatal("submissions never refused during drain")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate) // let the running job finish
	wg.Wait()
	if err := <-closeErr; err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, recs, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, r := range recs {
		states[r.ID] = r.State
	}
	if states[testID(40)] != StateDone {
		t.Errorf("running job state %q on disk, want done", states[testID(40)])
	}
	if states[testID(41)] != StateQueued {
		t.Errorf("queued job state %q on disk, want queued for restart", states[testID(41)])
	}
}

func TestNormalizeTenant(t *testing.T) {
	long := ""
	for i := 0; i < 10; i++ {
		long += "0123456789"
	}
	cases := map[string]string{
		"":       "anon",
		"  ":     "anon",
		" acme ": "acme",
		long:     long[:64],
	}
	for in, want := range cases {
		if got := NormalizeTenant(in); got != want {
			t.Errorf("NormalizeTenant(%q) = %q, want %q", in, got, want)
		}
	}
}
