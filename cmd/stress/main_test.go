package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestDeterministicAcrossWorkers pins the acceptance criterion end to
// end: same -seed and -duration must produce byte-identical JSON for
// any -workers value, and the current schedulers must come out clean.
func TestDeterministicAcrossWorkers(t *testing.T) {
	var outputs []string
	for _, workers := range []string{"1", "2", "5"} {
		code, stdout, stderr := runCLI(t,
			"-seed", "1", "-duration", "250ms", "-workers", workers)
		if code != exitOK {
			t.Fatalf("workers=%s: exit %d, stderr: %s", workers, code, stderr)
		}
		outputs = append(outputs, stdout)
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Error("JSON report differs across -workers values")
	}
	if !strings.Contains(outputs[0], `"seed": 1`) {
		t.Errorf("report missing seed field:\n%s", outputs[0])
	}
}

func TestDurationMapsToDeterministicCases(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-seed", "3", "-duration", "120ms")
	if code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, `"cases": 12`) {
		t.Errorf("120ms should map to exactly 12 cases:\n%s", stdout)
	}
}

func TestExplicitCasesOverrideDuration(t *testing.T) {
	code, stdout, _ := runCLI(t, "-seed", "3", "-duration", "10s", "-cases", "2")
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stdout, `"cases": 2`) {
		t.Errorf("-cases 2 not honored:\n%s", stdout)
	}
}

func TestOutFileAndSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	code, stdout, stderr := runCLI(t, "-seed", "2", "-cases", "3", "-out", path)
	if code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Error("-out should leave stdout empty")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"machine": "cydra5"`) {
		t.Errorf("report file incomplete:\n%s", b)
	}
	if !strings.Contains(stderr, "stress: seed=2 cases=3") {
		t.Errorf("summary missing from stderr: %s", stderr)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-machine", "pdp11"},
		{"-badflag"},
		{"positional"},
	} {
		if code, _, _ := runCLI(t, args...); code != exitUsage {
			t.Errorf("args %v: exit %d, want %d", args, code, exitUsage)
		}
	}
}

func TestOtherMachines(t *testing.T) {
	for _, m := range []string{"generic", "tiny"} {
		code, stdout, stderr := runCLI(t, "-seed", "5", "-cases", "5", "-machine", m)
		if code != exitOK {
			t.Fatalf("machine %s: exit %d, stderr: %s", m, code, stderr)
		}
		if !strings.Contains(stdout, fmt.Sprintf("%q: %q", "machine", m)) &&
			!strings.Contains(stdout, fmt.Sprintf(`"machine": %q`, m)) {
			t.Errorf("machine %s not recorded in report", m)
		}
	}
}
