// Package diskcache is a crash-safe, content-addressed blob store: the
// persistent tier under the in-memory compile cache. Entries are keyed
// by the schedcache SHA-256 hex key and hold an opaque payload (the
// serialized schedule); the store guarantees that a reader either gets
// exactly the bytes a writer stored or a miss — never a torn, truncated,
// or bit-flipped payload.
//
// Three mechanisms carry that guarantee:
//
//   - Writes are atomic: the payload is written to a temp file in the
//     entry's own shard directory, fsynced, and renamed into place (the
//     directory is fsynced too, best effort). A crash at any instant
//     leaves either the old state or the new entry, plus possibly a
//     temp file the startup scan sweeps away.
//   - Every entry embeds its key and a SHA-256 checksum of the payload.
//     Get verifies both; an entry that fails verification is deleted,
//     counted in Stats.Corrupt, and reported as a miss — corrupt bytes
//     are never returned.
//   - Open scans the tree: well-formed entries are counted, anything
//     else (temp leftovers, truncated entries, stray files) is moved to
//     a quarantine/ subdirectory for the operator to inspect.
//
// The store is safe for concurrent use within a process. Multiple
// processes sharing a directory are safe for reads and same-content
// writes (keys are content-addressed, so concurrent writers of one key
// write identical bytes and the atomic rename makes either copy fine).
package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// magic opens every entry file; the version byte gates format changes.
// Bump formatVersion whenever the payload codec changes incompatibly —
// old entries then verify-fail and are evicted rather than misdecoded.
var magic = [4]byte{'M', 'S', 'C', '1'}

const (
	// entrySuffix names completed entries; temp files use tmpPrefix and
	// never match an entry name, so a crash mid-write can never leave a
	// file that Get would open.
	entrySuffix = ".sch"
	tmpPrefix   = ".tmp-"
	// QuarantineDir collects files the startup scan rejected.
	QuarantineDir = "quarantine"
	// headerSize is magic + key (32 bytes) + payload length (8 bytes).
	headerSize = 4 + sha256.Size + 8
	// maxPayload bounds a single entry (a schedule blob is a few KiB;
	// anything near this is garbage and treated as corrupt).
	maxPayload = 64 << 20
)

// Stats reports store traffic since Open. Entries is a live count.
type Stats struct {
	// Hits returned a verified payload; Misses found no entry.
	Hits, Misses int64
	// Writes completed an atomic entry write; WriteErrors failed one
	// (the compile result is still served from memory — persistence is
	// best effort).
	Writes, WriteErrors int64
	// Corrupt counts entries deleted because verification failed at read
	// time or a caller proved the payload undecodable (MarkCorrupt).
	Corrupt int64
	// Quarantined counts files the startup scan moved aside.
	Quarantined int64
	// Entries is the current number of well-formed entries.
	Entries int64
}

// Store is one cache directory. Construct with Open.
type Store struct {
	root string
	// wmu serializes writers: without it, two concurrent Puts of one
	// missing key would both pass the existence check and double-count
	// the entry. Writes happen once per compile miss, so contention is
	// nil next to the compile itself.
	wmu sync.Mutex

	hits, misses, writes, writeErrs atomic.Int64
	corrupt, quarantined, entries   atomic.Int64
}

// Open prepares dir (creating it if needed) and scans it: well-formed
// entries are counted, everything else is quarantined. The scan is
// proportional to the number of entries but reads only headers and
// checksums — no decoding.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("diskcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	s := &Store{root: dir}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrs.Load(),
		Corrupt:     s.corrupt.Load(),
		Quarantined: s.quarantined.Load(),
		Entries:     s.entries.Load(),
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// validKey reports whether key is a 64-digit lowercase hex string (the
// schedcache key shape). Everything else is rejected outright so a
// hostile or buggy key can never escape the cache tree.
func validKey(key string) bool {
	if len(key) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// entryPath shards entries by the first key byte: root/ab/abcdef….sch.
func (s *Store) entryPath(key string) string {
	return filepath.Join(s.root, key[:2], key+entrySuffix)
}

// Get returns the payload stored under key. ok is false on a miss —
// including an entry that existed but failed verification, which is
// deleted and counted in Stats.Corrupt, never returned.
func (s *Store) Get(key string) (payload []byte, ok bool) {
	if !validKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	path := s.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err = decodeEntry(key, data)
	if err != nil {
		// Torn or bit-flipped: evict so the next writer can heal it, and
		// report a miss. The caller recompiles; wrong bytes never escape.
		s.evictCorrupt(path)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Put stores payload under key with an atomic, fsynced write. Entries
// are content-addressed and immutable: if key already exists, Put is a
// no-op. Errors are counted and returned, but callers treat persistence
// as best effort — a failed Put never fails the compile.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		s.writeErrs.Add(1)
		return fmt.Errorf("diskcache: invalid key %q", key)
	}
	if len(payload) > maxPayload {
		s.writeErrs.Add(1)
		return fmt.Errorf("diskcache: payload of %d bytes exceeds the %d limit", len(payload), maxPayload)
	}
	path := s.entryPath(key)
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if _, err := os.Stat(path); err == nil {
		return nil // already present; identical by content addressing
	}
	if err := s.writeEntry(path, key, payload); err != nil {
		s.writeErrs.Add(1)
		return err
	}
	s.writes.Add(1)
	s.entries.Add(1)
	return nil
}

func (s *Store) writeEntry(path, key string, payload []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	// The temp file lives in the destination directory so the rename is
	// within one filesystem and atomic.
	f, err := os.CreateTemp(dir, tmpPrefix+key+"-*")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if _, err := f.Write(encodeEntry(key, payload)); err != nil {
		cleanup()
		return fmt.Errorf("diskcache: %w", err)
	}
	// fsync before rename: the entry must be durable before it becomes
	// visible, or a crash could leave a named entry with unwritten tails.
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("diskcache: %w", err)
	}
	// Make the rename itself durable. Not all platforms support dir
	// fsync; failure here cannot corrupt anything (worst case the entry
	// vanishes on crash, which is a miss), so it is best effort.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// MarkCorrupt deletes key's entry and counts it corrupt. Callers use it
// when an entry passed the checksum but proved undecodable at a higher
// layer (a format drift, a payload for a different loop shape) — the
// contract is the same: delete, count, treat as a miss.
func (s *Store) MarkCorrupt(key string) {
	if !validKey(key) {
		return
	}
	s.evictCorrupt(s.entryPath(key))
}

func (s *Store) evictCorrupt(path string) {
	if err := os.Remove(path); err == nil {
		s.corrupt.Add(1)
		s.entries.Add(-1)
	}
}

// Len returns the current entry count.
func (s *Store) Len() int { return int(s.entries.Load()) }

// scan walks the tree: counts verified entries, quarantines everything
// else (temp leftovers from a crash mid-write, truncated or corrupt
// entries, stray files).
func (s *Store) scan() error {
	qdir := filepath.Join(s.root, QuarantineDir)
	quarantine := func(path string) {
		if err := os.MkdirAll(qdir, 0o755); err != nil {
			os.Remove(path) // cannot quarantine; deleting still protects reads
			s.quarantined.Add(1)
			return
		}
		dst := filepath.Join(qdir, filepath.Base(path))
		for i := 1; ; i++ {
			if _, err := os.Lstat(dst); errors.Is(err, fs.ErrNotExist) {
				break
			}
			dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", filepath.Base(path), i))
		}
		if err := os.Rename(path, dst); err != nil {
			os.Remove(path)
		}
		s.quarantined.Add(1)
	}

	return filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Never descend into the quarantine.
			if path != s.root && filepath.Base(path) == QuarantineDir {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		key, isEntry := strings.CutSuffix(name, entrySuffix)
		if !isEntry || !validKey(key) || filepath.Base(filepath.Dir(path)) != key[:2] {
			quarantine(path)
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			quarantine(path)
			return nil
		}
		if _, err := decodeEntry(key, data); err != nil {
			quarantine(path)
			return nil
		}
		s.entries.Add(1)
		return nil
	})
}

// encodeEntry frames a payload: magic, the 32-byte key, the payload
// length, the payload, and a SHA-256 checksum over everything before it.
// Binding the key into the frame (and the checksum) catches a file
// renamed or hard-linked across keys, not just bit rot.
func encodeEntry(key string, payload []byte) []byte {
	rawKey, _ := hex.DecodeString(key) // validKey guaranteed upstream
	buf := make([]byte, 0, headerSize+len(payload)+sha256.Size)
	buf = append(buf, magic[:]...)
	buf = append(buf, rawKey...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// decodeEntry verifies a frame and returns its payload.
func decodeEntry(key string, data []byte) ([]byte, error) {
	if len(data) < headerSize+sha256.Size {
		return nil, io.ErrUnexpectedEOF
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return nil, errors.New("bad magic")
	}
	rawKey, err := hex.DecodeString(key)
	if err != nil || !bytes.Equal(data[4:4+sha256.Size], rawKey) {
		return nil, errors.New("key mismatch")
	}
	n := binary.BigEndian.Uint64(data[4+sha256.Size : headerSize])
	if n > maxPayload || headerSize+int(n)+sha256.Size != len(data) {
		return nil, errors.New("length mismatch")
	}
	body := data[:headerSize+int(n)]
	var sum [sha256.Size]byte
	copy(sum[:], data[headerSize+int(n):])
	if sha256.Sum256(body) != sum {
		return nil, errors.New("checksum mismatch")
	}
	// Return a copy detached from the read buffer.
	return append([]byte(nil), body[headerSize:]...), nil
}
