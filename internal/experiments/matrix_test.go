package experiments

import (
	"context"
	"os"
	"strings"
	"testing"

	"modsched/internal/ir"
	"modsched/internal/machine"
)

// TestMatrixDeterministicAcrossWorkers: the cross-machine matrix report
// must be byte-identical for any worker count — machines run in
// sequence and each per-machine harness folds results in input order,
// so parallelism is invisible in the rendered report.
func TestMatrixDeterministicAcrossWorkers(t *testing.T) {
	src, err := os.ReadFile("../../testdata/machines/single_issue.mach")
	if err != nil {
		t.Fatal(err)
	}
	single, err := machine.ParseMachine(string(src))
	if err != nil {
		t.Fatal(err)
	}
	machines := []MatrixMachine{
		{Name: "cydra5", Machine: machine.Cydra5()},
		{Name: "single_issue", Machine: single},
	}
	n := 12
	if testing.Short() {
		n = 6
	}
	corpusFor := func(m *machine.Machine) ([]*ir.Loop, error) {
		return SmallCorpus(m, n)
	}
	ratios := []float64{1.0, 2.0}
	ctx := context.Background()

	ref, err := RunMatrix(ctx, machines, corpusFor, ratios, 1)
	if err != nil {
		t.Fatal(err)
	}
	refText := FormatMatrix(ref)
	for _, workers := range []int{4, 8} {
		rep, err := RunMatrix(ctx, machines, corpusFor, ratios, workers)
		if err != nil {
			t.Fatal(err)
		}
		if text := FormatMatrix(rep); text != refText {
			t.Fatalf("workers=%d: matrix report differs:\n-- workers=1 --\n%s\n-- workers=%d --\n%s",
				workers, refText, workers, text)
		}
	}

	// Sanity on the report shape: every machine appears with the full
	// corpus (synthetic loops plus the kernel suite) and a rate in (0, 1].
	wantLoops, err := SmallCorpus(machines[0].Machine, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(machines) {
		t.Fatalf("got %d reports, want %d", len(ref), len(machines))
	}
	for i, r := range ref {
		if r.Name != machines[i].Name {
			t.Errorf("report %d name = %q, want %q", i, r.Name, machines[i].Name)
		}
		if r.Loops != len(wantLoops) {
			t.Errorf("%s: scheduled %d loops, want %d", r.Name, r.Loops, len(wantLoops))
		}
		if r.IIEqMII <= 0 || r.IIEqMII > 1 {
			t.Errorf("%s: II=MII rate %.3f out of (0,1]", r.Name, r.IIEqMII)
		}
		if len(r.Sweep) != len(ratios) {
			t.Errorf("%s: sweep has %d points, want %d", r.Name, len(r.Sweep), len(ratios))
		}
		if !strings.Contains(refText, r.Name) {
			t.Errorf("rendered report omits %s", r.Name)
		}
	}
}
