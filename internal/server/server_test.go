package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const daxpySource = `
loop daxpy
profile 5 10000

xi = aadd xi@1, #8
x  = load xi
yi = aadd yi@1, #8
y  = load yi
t1 = fmul a, x
t2 = fadd y, t1
si = aadd si@1, #8
st: store si, t2
brtop
`

// impossibleSource carries a zero-distance dependence cycle: the bound
// computation proves no II can satisfy it.
const impossibleSource = `
loop impossible
a: x = add p
b: y = add x
brtop
!mem b -> a dist 0
`

// chainSource builds a serial fadd chain of n operations — compile cost
// grows superlinearly with n, which the deadline test exploits.
func chainSource(n int) string {
	var b strings.Builder
	b.WriteString("loop chain\n")
	b.WriteString("x0 = fadd a, a\n")
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, "x%d = fadd x%d, a\n", i, i-1)
	}
	b.WriteString("brtop\n")
	return b.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSONBody(t *testing.T, url string, v any) (int, []byte, http.Header) {
	t.Helper()
	payload, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

func TestCompileSingle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := postJSONBody(t, ts.URL+"/compile", CompileRequest{Source: daxpySource})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body: %s", status, body)
	}
	var resp CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Name != "daxpy" {
		t.Errorf("Name = %q, want daxpy", resp.Name)
	}
	if resp.II < resp.MII || resp.MII < 1 {
		t.Errorf("II = %d, MII = %d: want II >= MII >= 1", resp.II, resp.MII)
	}
	if resp.Kernel == "" {
		t.Error("empty kernel")
	}
	text := resp.Text()
	for _, want := range []string{"loop daxpy:", "ResMII=", "II=", "DeltaII="} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered text lacks %q:\n%s", want, text)
		}
	}
}

// TestErrorMapping pins the typed-error -> HTTP status contract of the
// serving layer.
func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		req    CompileRequest
		status int
		kind   string
	}{
		{"parse", CompileRequest{Source: "loop x\nnonsense\n"}, 422, KindParse},
		{"unknown machine", CompileRequest{Source: daxpySource, Machine: "pdp11"}, 422, KindInvalid},
		{"bad priority", CompileRequest{Source: daxpySource, Options: &OptionsSpec{Priority: "zorch"}}, 422, KindInvalid},
		{"negative budget", CompileRequest{Source: daxpySource, Options: &OptionsSpec{Budget: -1}}, 422, KindInvalid},
		{"no schedule", CompileRequest{Source: impossibleSource}, 409, KindNoSchedule},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := postJSONBody(t, ts.URL+"/compile", tc.req)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (body: %s)", status, tc.status, body)
			}
			var eresp ErrorResponse
			if err := json.Unmarshal(body, &eresp); err != nil {
				t.Fatal(err)
			}
			if eresp.Kind != tc.kind {
				t.Errorf("kind = %q, want %q (error: %s)", eresp.Kind, tc.kind, eresp.Error)
			}
		})
	}
}

// TestDeadlineMapsTo504: an expired compile deadline classifies as
// KindDeadline/504. Driven through compileItem with a pre-canceled
// context — wall-clock deadlines cannot fire deterministically in a
// test, but the classification path is identical.
func TestDeadlineMapsTo504(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	item := s.compileItem(ctx, &CompileRequest{Source: daxpySource})
	if item.Status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (item: %+v)", item.Status, item)
	}
	if item.Error == nil || item.Error.Kind != KindDeadline {
		t.Errorf("error = %+v, want kind %q", item.Error, KindDeadline)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})

	resp, err := http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile status = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/compile", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400 (%s)", resp.StatusCode, body)
	}

	status, body, _ := postJSONBody(t, ts.URL+"/compile/batch", BatchRequest{})
	if status != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400 (%s)", status, body)
	}
	status, body, _ = postJSONBody(t, ts.URL+"/compile/batch", BatchRequest{
		Loops: make([]CompileRequest, 3),
	})
	if status != http.StatusBadRequest {
		t.Errorf("oversized batch status = %d, want 400 (%s)", status, body)
	}
}

// TestBatchDeterminism: the batch response must be byte-identical for
// any worker count, including with failing items mixed in.
func TestBatchDeterminism(t *testing.T) {
	req := BatchRequest{Loops: []CompileRequest{
		{Source: daxpySource},
		{Source: "loop x\nnonsense\n"},
		{Source: daxpySource, Machine: "tiny"},
		{Source: impossibleSource},
		{Source: daxpySource, Options: &OptionsSpec{Priority: "fifo"}},
		{Source: daxpySource},
	}}
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		_, ts := newTestServer(t, Config{BatchWorkers: workers})
		status, body, _ := postJSONBody(t, ts.URL+"/compile/batch", req)
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status = %d (%s)", workers, status, body)
		}
		if want == nil {
			want = body
			var bresp BatchResponse
			if err := json.Unmarshal(body, &bresp); err != nil {
				t.Fatal(err)
			}
			if len(bresp.Results) != len(req.Loops) {
				t.Fatalf("got %d results for %d loops", len(bresp.Results), len(req.Loops))
			}
			for i, wantStatus := range []int{200, 422, 200, 409, 200, 200} {
				if bresp.Results[i].Status != wantStatus {
					t.Errorf("item %d status = %d, want %d", i, bresp.Results[i].Status, wantStatus)
				}
			}
		} else if !bytes.Equal(body, want) {
			t.Errorf("workers=%d: batch response differs from workers=1", workers)
		}
	}
}

// TestAdmissionShed: with one slot and a one-deep waiting room, a third
// concurrent request is shed with 429 and a Retry-After hint.
func TestAdmissionShed(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 1, QueueWait: 5 * time.Second})
	hold := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.testCompileHook = func(*CompileRequest) {
		entered <- struct{}{}
		<-hold
	}

	var wg sync.WaitGroup
	results := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, _ := postJSONBody(t, ts.URL+"/compile", CompileRequest{Source: daxpySource})
			results[i] = status
		}(i)
		if i == 0 {
			// Make sure the first request holds the slot before the second
			// request queues behind it.
			<-entered
		} else {
			waitFor(t, func() bool { return s.adm.queued() == 1 })
		}
	}

	status, body, hdr := postJSONBody(t, ts.URL+"/compile", CompileRequest{Source: daxpySource})
	if status != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d, want 429 (%s)", status, body)
	}
	var eresp ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Kind != KindOverloaded {
		t.Errorf("kind = %q, want %q", eresp.Kind, KindOverloaded)
	}
	if hdr.Get("Retry-After") == "" || eresp.RetryAfterSec < 1 {
		t.Errorf("Retry-After hint missing: header=%q body=%d", hdr.Get("Retry-After"), eresp.RetryAfterSec)
	}

	close(hold)
	wg.Wait()
	for i, status := range results {
		if status != http.StatusOK {
			t.Errorf("held request %d finished with %d, want 200", i, status)
		}
	}
}

// TestDrainZeroDrops: requests admitted before the drain complete
// normally; requests arriving after it are refused with 503 "draining".
func TestDrainZeroDrops(t *testing.T) {
	const inFlight = 4
	s, ts := newTestServer(t, Config{MaxInFlight: inFlight})
	hold := make(chan struct{})
	entered := make(chan struct{}, inFlight)
	s.testCompileHook = func(*CompileRequest) {
		entered <- struct{}{}
		<-hold
	}

	var wg sync.WaitGroup
	results := make([]int, inFlight)
	bodies := make([][]byte, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], bodies[i], _ = postJSONBody(t, ts.URL+"/compile", CompileRequest{Source: daxpySource})
		}(i)
	}
	for i := 0; i < inFlight; i++ {
		<-entered
	}

	s.StartDrain()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz status = %d, want 503", resp.StatusCode)
	}
	status, body, _ := postJSONBody(t, ts.URL+"/compile", CompileRequest{Source: daxpySource})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain compile status = %d, want 503 (%s)", status, body)
	}
	var eresp ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Kind != KindDraining {
		t.Errorf("kind = %q, want %q", eresp.Kind, KindDraining)
	}

	close(hold)
	wg.Wait()
	for i := range results {
		if results[i] != http.StatusOK {
			t.Errorf("in-flight request %d dropped: status = %d (%s)", i, results[i], bodies[i])
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}
