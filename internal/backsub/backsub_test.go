package backsub

import (
	"testing"

	"modsched/internal/codegen"
	"modsched/internal/core"
	"modsched/internal/ir"
	"modsched/internal/machine"
	"modsched/internal/mii"
	"modsched/internal/vliw"
)

// naiveStreamLoop builds a store stream with a distance-1 address
// induction (the form a naive front end emits).
func naiveStreamLoop(t testing.TB, m *machine.Machine) (*ir.Loop, ir.Reg, ir.Reg) {
	t.Helper()
	b := ir.NewBuilder("naive", m)
	ai := b.Future()
	b.DefineAsImm(ai, "aadd", 8, ai.Back(1))
	x := b.Define("load", ai)
	y := b.Define("fmul", x, b.Invariant("c"))
	si := b.Future()
	b.DefineAsImm(si, "aadd", 8, si.Back(1))
	b.Effect("store", si, y)
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return l, b.RegOf(ai), b.RegOf(si)
}

func TestApplyLowersRecMII(t *testing.T) {
	m := machine.Cydra5() // aadd latency 3
	l, _, _ := naiveStreamLoop(t, m)
	delays, err := ir.Delays(l, m, ir.VLIWDelays)
	if err != nil {
		t.Fatal(err)
	}
	before, err := mii.ExactRecMII(l, delays, nil)
	if err != nil {
		t.Fatal(err)
	}
	if before != 3 {
		t.Fatalf("naive RecMII = %d, want 3 (aadd latency)", before)
	}

	l2, rws, err := Apply(l, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 2 {
		t.Fatalf("rewrites = %d, want 2 (both address inductions)", len(rws))
	}
	for _, rw := range rws {
		if rw.OldDist != 1 || rw.NewDist != 3 {
			t.Errorf("rewrite %+v, want 1 -> 3", rw)
		}
	}
	delays2, err := ir.Delays(l2, m, ir.VLIWDelays)
	if err != nil {
		t.Fatal(err)
	}
	after, err := mii.ExactRecMII(l2, delays2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after != 1 {
		t.Errorf("back-substituted RecMII = %d, want 1", after)
	}
	// Immediates scaled.
	for _, op := range l2.RealOps() {
		if op.Opcode == "aadd" && op.Imm != 24 {
			t.Errorf("imm = %d, want 24", op.Imm)
		}
	}
	// The original loop is untouched.
	for _, op := range l.RealOps() {
		if op.Opcode == "aadd" && op.Imm != 8 {
			t.Error("Apply mutated its input")
		}
	}
}

func TestApplyIdempotentWhenAlreadyFast(t *testing.T) {
	m := machine.Cydra5()
	l, _, _ := naiveStreamLoop(t, m)
	l2, _, err := Apply(l, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	l3, rws, err := Apply(l2, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 0 {
		t.Errorf("second Apply rewrote %d ops, want 0", len(rws))
	}
	if l3.NumRealOps() != l2.NumRealOps() {
		t.Error("idempotent application changed the loop")
	}
}

func TestIneligibleOpsUntouched(t *testing.T) {
	m := machine.Cydra5()
	b := ir.NewBuilder("inel", m)
	// Accumulator (no immediate): not closed-form, must not be rewritten.
	s := b.Future()
	b.DefineAs(s, "fadd", s.Back(1), b.Invariant("x"))
	// Predicated induction: not rewritten.
	p := b.Define("cmp", b.Invariant("a"), b.Invariant("bb"))
	b.SetPred(p)
	g := b.Future()
	b.DefineAsImm(g, "aadd", 8, g.Back(1))
	b.ClearPred()
	b.Effect("brtop")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, rws, err := Apply(l, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 0 {
		t.Errorf("rewrote ineligible ops: %+v", rws)
	}
}

// TestSemanticsPreserved runs the original and the back-substituted loops
// through the reference interpreter and the pipelined simulator: identical
// memory images, and the transformed version must achieve a smaller II.
func TestSemanticsPreserved(t *testing.T) {
	m := machine.Cydra5()
	l, ai, si := naiveStreamLoop(t, m)
	const trips = 30
	mkSpec := func(aiHist, siHist []float64) vliw.RunSpec {
		mem := map[int64]float64{}
		for i := int64(0); i < trips; i++ {
			mem[1000+8*(i+1)] = float64(i + 1)
		}
		spec := vliw.RunSpec{
			Init:     map[ir.Reg]float64{ai: 1000, si: 9000},
			InitHist: map[ir.Reg][]float64{},
			Mem:      mem,
			Trips:    trips,
		}
		if aiHist != nil {
			spec.InitHist[ai] = aiHist
		}
		if siHist != nil {
			spec.InitHist[si] = siHist
		}
		return spec
	}
	// Locate the invariant's register robustly.
	var cReg ir.Reg
	for _, op := range l.RealOps() {
		if op.Opcode == "fmul" {
			cReg = op.Srcs[1]
		}
	}

	specOrig := mkSpec(nil, nil)
	specOrig.Init[cReg] = 2
	refOrig, err := vliw.RunReference(l, specOrig)
	if err != nil {
		t.Fatal(err)
	}

	l2, rws, err := Apply(l, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) == 0 {
		t.Fatal("no rewrites")
	}
	aiHist := ExtendHist([]float64{1000}, 8, 1, 3)
	siHist := ExtendHist([]float64{9000}, 8, 1, 3)
	spec2 := mkSpec(aiHist, siHist)
	spec2.Init[cReg] = 2
	ref2, err := vliw.RunReference(l2, spec2)
	if err != nil {
		t.Fatal(err)
	}
	for a, want := range refOrig.Mem {
		if got := ref2.Mem[a]; got != want {
			t.Fatalf("interpretation diverged at mem[%d]: %v vs %v", a, got, want)
		}
	}

	// Schedule both; the transformed one must reach a smaller II, and its
	// pipelined execution must still match.
	s1, err := core.ModuloSchedule(l, m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := core.ModuloSchedule(l2, m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s2.II >= s1.II {
		t.Errorf("back-substitution did not help: II %d -> %d", s1.II, s2.II)
	}
	k, err := codegen.GenerateKernel(s2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vliw.RunKernel(k, m, spec2)
	if err != nil {
		t.Fatal(err)
	}
	for a, want := range refOrig.Mem {
		if g := got.Mem[a]; g != want {
			t.Fatalf("pipelined transformed loop wrong at mem[%d]: %v vs %v", a, g, want)
		}
	}
}

func TestExtendHist(t *testing.T) {
	h := ExtendHist([]float64{100}, 10, 1, 4)
	want := []float64{100, 90, 80, 70}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("hist = %v, want %v", h, want)
		}
	}
	// Multi-seed: d=2.
	h = ExtendHist([]float64{100, 55}, 10, 2, 6)
	want = []float64{100, 55, 90, 45, 80, 35}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("hist = %v, want %v", h, want)
		}
	}
}
