// Ifconversion: software-pipeline a loop that contains control flow. The
// structured body (with a real if/else) is IF-converted into a single
// predicated block, modulo-scheduled, and executed on the simulator; the
// results are checked against direct structured execution.
//
//	for i := range x {
//	    if x[i] < cap { y = x[i] } else { y = cap; clipped++ }
//	    out[i] = y
//	}
package main

import (
	"fmt"
	"log"

	"modsched"
)

func main() {
	m := modsched.Cydra5()

	rgn := &modsched.Region{
		Name: "clip",
		Stmts: []modsched.Stmt{
			modsched.Assign{Dest: "xi", Opcode: "aadd", Srcs: []modsched.Ref{{Name: "xi", Back: 1}}, Imm: 8},
			modsched.Assign{Dest: "x", Opcode: "load", Srcs: []modsched.Ref{{Name: "xi"}}},
			modsched.Assign{Dest: "c", Opcode: "cmp", Srcs: []modsched.Ref{{Name: "x"}, {Name: "cap"}}},
			modsched.IfStmt{
				Cond: modsched.Ref{Name: "c"},
				Then: []modsched.Stmt{
					modsched.Assign{Dest: "y", Opcode: "copy", Srcs: []modsched.Ref{{Name: "x"}}},
				},
				Else: []modsched.Stmt{
					modsched.Assign{Dest: "y", Opcode: "copy", Srcs: []modsched.Ref{{Name: "cap"}}},
					modsched.Assign{Dest: "clipped", Opcode: "add", Srcs: []modsched.Ref{{Name: "clipped", Back: 1}}, Imm: 1},
				},
			},
			modsched.Assign{Dest: "si", Opcode: "aadd", Srcs: []modsched.Ref{{Name: "si", Back: 1}}, Imm: 8},
			modsched.StoreStmt{Addr: modsched.Ref{Name: "si"}, Val: modsched.Ref{Name: "y"}},
		},
		EntryFreq: 1, LoopFreq: 100000,
	}

	const trips = 64
	mem := map[int64]float64{}
	for i := int64(0); i < trips; i++ {
		mem[1000+8*(i+1)] = float64((i * 7) % 13)
	}
	spec := modsched.RegionSpec{
		Vars:       map[string]float64{"xi": 1000, "si": 9000, "clipped": 0},
		Invariants: map[string]float64{"cap": 6},
		Mem:        mem,
		Trips:      trips,
	}

	// Ground truth: execute the structured form directly.
	want, err := modsched.RunStructured(rgn, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structured execution: clipped %v of %d elements\n", want.Vars["clipped"], trips)

	// IF-convert and pipeline.
	res, err := modsched.IfConvert(rgn, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("if-converted: %d predicated ops in one block\n", res.Loop.NumRealOps())

	sched, err := modsched.Compile(res.Loop, m, modsched.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipelined: II=%d MII=%d SL=%d — one element every %d cycles despite the branch\n",
		sched.II, sched.MII, sched.Length, sched.II)

	kern, err := modsched.GenerateKernel(sched)
	if err != nil {
		log.Fatal(err)
	}
	got, err := modsched.RunKernel(kern, m, res.ToRunSpec(spec))
	if err != nil {
		log.Fatal(err)
	}
	for a, w := range want.Mem {
		if got.Mem[a] != w {
			log.Fatalf("MISMATCH at mem[%d]: %v vs %v", a, got.Mem[a], w)
		}
	}
	if got.Final[res.Regs["clipped"]] != want.Vars["clipped"] {
		log.Fatalf("clipped count mismatch")
	}
	fmt.Println("pipelined execution matches the structured semantics")
}
