// Package schedcache memoizes compilation results keyed by what actually
// determines them: the canonical loop text, the machine fingerprint, and
// the scheduling options. Repeated compilations of structurally
// identical loops — the dominant pattern in corpus sweeps, where the
// same kernels recur across parameter settings — return a cached
// schedule in O(copy) instead of re-running the II search.
//
// Three properties the tests pin:
//
//   - Keys are structural, not pointer-based. A machine.Clone() and its
//     original hit the same entries (Fingerprint identity); a re-parsed
//     loop hits the entry of its first parse (looplang.Print identity).
//     Options participate in the key EXCEPT the result-identical knobs
//     SearchWorkers and ScanMRT: the speculative II race is bit-identical
//     to the sequential search by the core determinism suite, and the
//     compiled-mask MRT is bit-identical to the reference scan by the
//     core differential battery, so neither may fragment the cache.
//   - Hits return deep copies rebound to the caller's loop and machine
//     pointers. A caller mutating a returned schedule cannot poison
//     later hits.
//   - Duplicate concurrent compiles of the same key execute once
//     (singleflight): latecomers block on the first flight and share its
//     result. Errors are never cached — a failed or cancelled compile is
//     retried by the next caller.
//
// The scheduling algorithm is chosen by the CompileFunc, not by the
// options, so it is invisible to the key: one Cache must serve a single
// compile entry point. Callers mixing algorithms (iterative vs slack vs
// best-effort) need one cache per algorithm.
package schedcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"

	"modsched/internal/core"
	"modsched/internal/diskcache"
	"modsched/internal/ir"
	"modsched/internal/machine"
)

// DefaultCapacity bounds a zero-configured cache. Corpus sweeps hold a
// few thousand distinct loops; beyond that LRU eviction kicks in.
const DefaultCapacity = 4096

// Stats reports cache traffic. Hits served a stored entry, Misses
// executed the compile, Inflight joined an in-progress flight for the
// same key, Evictions counts LRU drops.
type Stats struct {
	Hits, Misses, Inflight, Evictions int64
}

// CompileFunc produces the value to cache on a miss.
type CompileFunc func() (*core.Schedule, *core.Degradation, error)

// WarmCompileFunc produces the value to cache on a miss, given the warm
// seed derived from the structural near-miss index (nil when warm
// starting is disabled or no neighbor qualified). See DoWarm.
type WarmCompileFunc func(seed *core.WarmSeed) (*core.Schedule, *core.Degradation, error)

// entry is one cached compilation, stored detached from every caller.
// sk is the structural sketch for the near-miss index; nil when warm
// starting was disabled at insert time.
type entry struct {
	key   string
	sched *core.Schedule
	deg   *core.Degradation
	sk    *sketch
}

// flight is one in-progress compilation that latecomers can join.
type flight struct {
	done  chan struct{}
	sched *core.Schedule // master copy, set before done closes
	deg   *core.Degradation
	err   error
}

// Cache is a bounded, thread-safe memoizing compile cache. The zero
// value is not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // of *entry; front = most recently used
	entries map[string]*list.Element
	flights map[string]*flight
	// fps memoizes machine fingerprint digests by pointer: rendering and
	// hashing the full opcode table costs more than scheduling a small
	// loop, and the same machine backs every compile of a corpus run.
	// Consequence: a machine must not be mutated after its first use
	// with a cache.
	fps   map[*machine.Machine][sha256.Size]byte
	stats Stats
	// disk is the optional persistent tier (AttachDisk); consulted on a
	// memory miss before compiling, written through after one.
	disk *diskcache.Store
	// warm is the structural near-miss index (near.go), populated only
	// after EnableWarmStart.
	warm warmIndex
}

// New returns a cache holding at most capacity entries (DefaultCapacity
// if capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
		fps:     make(map[*machine.Machine][sha256.Size]byte),
	}
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Key derives the canonical cache key: a hash over the machine
// fingerprint, the options (minus SearchWorkers and ScanMRT — see the
// package comment), and the loop's structural rendering. Cache.Do
// computes the same key with the machine fingerprint memoized; keep the
// two in sync.
func Key(l *ir.Loop, m *machine.Machine, opts core.Options) string {
	return keyWith(sha256.Sum256([]byte(m.Fingerprint())), l, opts)
}

// KeyWithFingerprint is Key with the machine's fingerprint digest
// precomputed — the front proxy routes on cache keys at request rate,
// and rendering a full opcode table per request would dwarf the routing
// decision itself.
func KeyWithFingerprint(fingerprint [sha256.Size]byte, l *ir.Loop, opts core.Options) string {
	return keyWith(fingerprint, l, opts)
}

func keyWith(fingerprint [sha256.Size]byte, l *ir.Loop, opts core.Options) string {
	h := sha256.New()
	writeKeyContext(h, fingerprint, opts)
	writeCanonicalLoop(h, l)
	return hex.EncodeToString(h.Sum(nil))
}

// writeKeyContext streams the key's (options, machine) prefix. keyWith
// and keyAndSketch must hash identical bytes; this is the shared half.
func writeKeyContext(w io.Writer, fingerprint [sha256.Size]byte, opts core.Options) {
	fmt.Fprintf(w, "options budget=%g delays=%d maxii=%d prio=%d restart=%t late=%t\n",
		opts.BudgetRatio, int(opts.DelayModel), opts.MaxII, int(opts.Priority),
		opts.RestartOnFailure, opts.PlaceLate)
	w.Write(fingerprint[:])
}

// keyAndSketch computes the exact cache key and the near-miss sketch
// from ONE walk of the canonical rendering: each line feeds the key's
// sha256 and the sketch's per-line FNV in the same pass. The walk
// dominates both costs, so a warm-enabled miss no longer renders the
// loop twice.
func keyAndSketch(fingerprint [sha256.Size]byte, opts core.Options, l *ir.Loop) (string, *sketch) {
	h := sha256.New()
	writeKeyContext(h, fingerprint, opts)
	sk := &sketch{
		ctx:   ctxHash(fingerprint, opts),
		n:     l.NumOps(),
		ops:   make([]uint64, 0, l.NumOps()),
		opIdx: make([]int32, 0, l.NumOps()),
	}
	walkCanonicalLoop(l,
		func(op int, line []byte) {
			h.Write(line)
			sk.ops = append(sk.ops, fnvLine(line))
			sk.opIdx = append(sk.opIdx, int32(op))
		},
		func(line []byte) {
			h.Write(line)
			sk.edges = append(sk.edges, fnvLine(line))
		})
	return hex.EncodeToString(h.Sum(nil)), sk
}

// writeCanonicalLoop streams the scheduling-relevant structure of l:
// every real operation's opcode, destination, guard, sources with
// iteration distances, and immediate, plus the explicit (mem, anti,
// output) dependence edges in a canonical order. Flow and control edges
// are fully derivable from the source references, and the loop's name,
// profile weights, and comments never reach the scheduler — a corpus is
// full of structurally identical loops under different names that must
// share one cache entry. The equivalence relation is the same as
// hashing the looplang rendering minus its header, at a fraction of the
// cost (no fmt, no per-call maps; Key is on every Do's hot path).
func writeCanonicalLoop(w io.Writer, l *ir.Loop) {
	walkCanonicalLoop(l,
		func(_ int, line []byte) { w.Write(line) },
		func(line []byte) { w.Write(line) })
}

// walkCanonicalLoop produces the canonical rendering line by line: one
// call per real operation (with its op index) followed by one call per
// explicit edge, in the exact byte order writeCanonicalLoop hashes. The
// near-miss index (near.go) hashes the same lines individually, so its
// structural distance is measured over precisely the content that
// defines cache keys.
func walkCanonicalLoop(l *ir.Loop, opLine func(op int, line []byte), edgeLine func(line []byte)) {
	buf := make([]byte, 0, 128)
	for oi, op := range l.Ops {
		if op.IsPseudo() {
			continue
		}
		buf = append(buf[:0], op.Opcode...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(op.Dest), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(op.Pred), 10)
		buf = append(buf, '@')
		buf = strconv.AppendInt(buf, int64(op.PredDist), 10)
		for si, r := range op.Srcs {
			d := 0
			if op.SrcDists != nil {
				d = op.SrcDists[si]
			}
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(r), 10)
			buf = append(buf, '@')
			buf = strconv.AppendInt(buf, int64(d), 10)
		}
		buf = append(buf, ' ', '#')
		buf = strconv.AppendInt(buf, op.Imm, 10)
		buf = append(buf, '\n')
		opLine(oi, buf)
	}
	// The explicit edges may appear in any order in l.Edges (a looplang
	// round-trip re-sorts them); canonicalize before hashing.
	var edges []ir.Edge
	for _, e := range l.Edges {
		if e.Kind == ir.Mem || e.Kind == ir.Anti || e.Kind == ir.Output {
			edges = append(edges, e)
		}
	}
	delay := func(e ir.Edge) int {
		if e.DelayOverride == nil {
			return math.MinInt
		}
		return *e.DelayOverride
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Distance != b.Distance {
			return a.Distance < b.Distance
		}
		return delay(a) < delay(b)
	})
	for _, e := range edges {
		buf = append(buf[:0], '!')
		buf = strconv.AppendInt(buf, int64(e.Kind), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.From), 10)
		buf = append(buf, '>')
		buf = strconv.AppendInt(buf, int64(e.To), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.Distance), 10)
		if e.DelayOverride != nil {
			buf = append(buf, '=')
			buf = strconv.AppendInt(buf, int64(*e.DelayOverride), 10)
		}
		buf = append(buf, '\n')
		edgeLine(buf)
	}
}

// Do returns the cached compilation for (l, m, opts), executing compile
// on a miss. Concurrent misses of the same key execute compile once; the
// rest wait and share the result. The returned schedule is the caller's
// own deep copy, rebound to the caller's l and m pointers.
func (c *Cache) Do(l *ir.Loop, m *machine.Machine, opts core.Options, compile CompileFunc) (*core.Schedule, *core.Degradation, error) {
	return c.do(l, m, opts, func(*core.WarmSeed) (*core.Schedule, *core.Degradation, error) {
		return compile()
	}, false)
}

// DoWarm is Do for seed-aware compilers: on a miss with warm starting
// enabled, the near-miss index is consulted and the nearest structural
// neighbor's schedule (bounded edit distance, see EnableWarmStart) is
// passed to compile as a *core.WarmSeed. The compiled result must be
// bit-identical to a cold compile — core's warm search guarantees this;
// only the Stats effort counters differ — so cached entries stay
// interchangeable with cold ones. With warm starting disabled, DoWarm
// behaves exactly like Do (compile receives a nil seed).
func (c *Cache) DoWarm(l *ir.Loop, m *machine.Machine, opts core.Options, compile WarmCompileFunc) (*core.Schedule, *core.Degradation, error) {
	return c.do(l, m, opts, compile, true)
}

func (c *Cache) do(l *ir.Loop, m *machine.Machine, opts core.Options, compile WarmCompileFunc, wantSeed bool) (*core.Schedule, *core.Degradation, error) {
	fp := c.fingerprint(m)
	// With the warm index on, the sketch rides along on the key's own
	// canonical walk (a hit simply drops it); with it off, the key walk
	// stays sketch-free.
	var sk *sketch
	var key string
	if c.warmEnabled() {
		key, sk = keyAndSketch(fp, opts, l)
	} else {
		key = keyWith(fp, l, opts)
	}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		ent := el.Value.(*entry)
		c.stats.Hits++
		c.mu.Unlock()
		return copySchedule(ent.sched, l, m), copyDegradation(ent.deg), nil
	}
	if f, ok := c.flights[key]; ok {
		c.stats.Inflight++
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, nil, f.err
		}
		return copySchedule(f.sched, l, m), copyDegradation(f.deg), nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	// The persistent tier, when attached, intercepts the compile: a
	// verified disk entry is promoted into memory without recompiling
	// (Stats.Misses keeps meaning "compile executed" — the disk store
	// counts its own hits). Latecomers joined the flight either way.
	sched, deg, fromDisk := c.diskGet(key, l, m, opts)
	var err error
	if !fromDisk {
		var seed *core.WarmSeed
		if sk != nil && wantSeed {
			seed = c.nearSeed(sk, key)
		}
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
		sched, deg, err = compile(seed)
		if err == nil && seed != nil {
			c.recordWarm(&sched.Stats)
		}
	}
	if err == nil {
		// The master copy is detached from the result handed to the miss
		// caller, so their later mutations cannot reach the cache.
		f.sched, f.deg = copySchedule(sched, sched.Loop, sched.Machine), copyDegradation(deg)
	} else {
		f.err = err
	}
	close(f.done)
	if err == nil && !fromDisk {
		// Write-through, best effort: the compile is served from memory
		// whether or not persistence succeeds.
		c.diskPut(key, f.sched, f.deg)
	}

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		el := c.lru.PushFront(&entry{key: key, sched: f.sched, deg: f.deg, sk: sk})
		c.entries[key] = el
		if sk != nil && c.warm.enabled {
			c.indexEntry(el)
		}
		for c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			oent := oldest.Value.(*entry)
			delete(c.entries, oent.key)
			if oent.sk != nil {
				c.deindexEntry(oldest)
			}
			c.stats.Evictions++
		}
	}
	c.mu.Unlock()
	return sched, deg, err
}

// fingerprint returns the digest of m's fingerprint, memoized by
// pointer (see the fps field). The map is bounded: a process juggling
// many machine values just recomputes.
func (c *Cache) fingerprint(m *machine.Machine) [sha256.Size]byte {
	c.mu.Lock()
	fp, ok := c.fps[m]
	c.mu.Unlock()
	if ok {
		return fp
	}
	fp = sha256.Sum256([]byte(m.Fingerprint()))
	c.mu.Lock()
	if len(c.fps) >= 64 {
		clear(c.fps)
	}
	c.fps[m] = fp
	c.mu.Unlock()
	return fp
}

// copySchedule deep-copies s, rebinding its loop and machine pointers to
// the caller's (key equality guarantees they are interchangeable for
// scheduling purposes).
func copySchedule(s *core.Schedule, l *ir.Loop, m *machine.Machine) *core.Schedule {
	if s == nil {
		return nil
	}
	cp := *s
	cp.Loop = l
	cp.Machine = m
	cp.Times = append([]int(nil), s.Times...)
	cp.Alts = append([]int(nil), s.Alts...)
	cp.Delays = append([]int(nil), s.Delays...)
	return &cp
}

// copyDegradation deep-copies a degradation report (the failure errors
// themselves are shared; they are never mutated).
func copyDegradation(d *core.Degradation) *core.Degradation {
	if d == nil {
		return nil
	}
	cp := *d
	cp.Failures = append([]core.StageFailure(nil), d.Failures...)
	return &cp
}
