package looplang

import (
	"errors"
	"strings"
	"testing"

	"modsched/internal/machine"
)

// TestMalformedInputs drives the parser through the audit's catalogue of
// broken inputs. Every case must be rejected with a *ParseError whose
// position points at the offending line, and must never panic.
func TestMalformedInputs(t *testing.T) {
	m := machine.Cydra5()
	cases := []struct {
		name    string
		src     string
		line    int    // expected ParseError.Line (0 = whole-input)
		wantMsg string // substring the message must contain
	}{
		{"empty input", "", 0, "missing 'loop NAME' header"},
		{"only comments", "; nothing here\n ; still nothing\n", 0, "missing 'loop NAME' header"},
		{"truncated header", "loop\nbrtop\n", 1, "usage: loop NAME"},
		{"header with garbage", "loop l extra\nbrtop\n", 1, "usage: loop NAME"},
		{"duplicate header", "loop l\nloop m\nbrtop\n", 2, "duplicate 'loop' header"},
		{"no operations", "loop l\nprofile 1 2\n", 0, "has no operations"},
		{"truncated profile", "loop l\nprofile 5\nbrtop\n", 2, "usage: profile"},
		{"non-numeric profile", "loop l\nprofile five ten\nbrtop\n", 2, "two integers"},
		{"unknown opcode", "loop l\nx = warp p\nbrtop\n", 2, "unknown opcode"},
		{"missing opcode", "loop l\nx =\nbrtop\n", 2, "missing opcode"},
		{"bad destination", "loop l\nx@1 = load p\nbrtop\n", 2, "bad destination"},
		{"empty destination", "loop l\n = load p\nbrtop\n", 2, "bad destination"},
		{"duplicate definition", "loop l\nx = load p\nx = load q\nbrtop\n", 3, "defined twice"},
		{"duplicate label", "loop l\na: x = load p\na: y = load q\nbrtop\n", 3, "used twice"},
		{"unterminated predicate", "loop l\n(p x = load q\nbrtop\n", 2, "unterminated predicate"},
		{"empty predicate", "loop l\n() x = load q\nbrtop\n", 2, "empty predicate"},
		{"bad immediate", "loop l\nx = aadd y, #zz\nbrtop\n", 2, "bad immediate"},
		{"duplicate immediate", "loop l\nx = aadd y, #1, #2\nbrtop\n", 2, "duplicate immediate"},
		{"negative back-reference", "loop l\nx = load q@-1\nbrtop\n", 2, "bad back-reference"},
		{"non-numeric back-reference", "loop l\nx = load q@k\nbrtop\n", 2, "bad back-reference"},
		{"invariant back-reference", "loop l\nx = load undef@2\nbrtop\n", 2, "undefined (invariant) name"},
		{"unknown dep kind", "loop l\nx = load p\nbrtop\n!ctrl x -> x dist 1\n", 4, "unknown dependence kind"},
		{"dep missing arrow", "loop l\nx = load p\nbrtop\n!mem x x dist 1\n", 4, "usage: !mem"},
		{"dep truncated", "loop l\nx = load p\nbrtop\n!mem x -> x\n", 4, "usage: !mem"},
		{"dep bad distance", "loop l\nx = load p\nbrtop\n!mem x -> x dist many\n", 4, "bad distance"},
		{"dep negative distance", "loop l\nx = load p\nbrtop\n!mem x -> x dist -1\n", 4, "bad distance"},
		{"dep delay without value", "loop l\nx = load p\nbrtop\n!mem x -> x dist 1 delay\n", 4, "'delay' wants a value"},
		{"dep bad delay", "loop l\nx = load p\nbrtop\n!mem x -> x dist 1 delay soon\n", 4, "bad delay"},
		{"dep trailing garbage", "loop l\nx = load p\nbrtop\n!mem x -> x dist 1 junk\n", 4, "unexpected"},
		{"dep garbage after delay", "loop l\nx = load p\nbrtop\n!mem x -> x dist 1 delay 2 junk\n", 4, "after delay value"},
		{"dangling dep source", "loop l\nx = load p\nbrtop\n!mem nosuch -> x dist 1\n", 4, "unknown operation"},
		{"dangling dep target", "loop l\nx = load p\nbrtop\n!mem x -> nosuch dist 1\n", 4, "unknown operation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src, m)
			if err == nil {
				t.Fatalf("accepted malformed input:\n%s", tc.src)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is not a *ParseError: %T %v", err, err)
			}
			if pe.Line != tc.line {
				t.Errorf("line = %d, want %d (%v)", pe.Line, tc.line, err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("message %q does not mention %q", err.Error(), tc.wantMsg)
			}
		})
	}
}

// TestParseErrorColumns spot-checks that token-level errors carry a column
// pointing at the offending token, not just a line.
func TestParseErrorColumns(t *testing.T) {
	m := machine.Cydra5()
	cases := []struct {
		name string
		src  string
		col  int
	}{
		{"unknown opcode", "loop l\nx = warp p\nbrtop\n", 5},
		{"bad immediate", "loop l\nx = aadd y, #zz\nbrtop\n", 13},
		{"dep bad distance", "loop l\nx = load p\nbrtop\n!mem x -> x dist many\n", 18},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src, m)
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is not a *ParseError: %v", err)
			}
			if pe.Col != tc.col {
				t.Errorf("col = %d, want %d (%v)", pe.Col, tc.col, err)
			}
		})
	}
}

// TestParseNilMachine: without a machine the parser still enforces syntax
// (opcode validity is deferred), which is the mode the fuzzer runs in.
func TestParseNilMachine(t *testing.T) {
	l, err := Parse("loop l\nx = anything p\nbrtop\n", nil)
	if err != nil {
		t.Fatalf("nil-machine parse failed: %v", err)
	}
	if l.Name != "l" {
		t.Errorf("name = %q", l.Name)
	}
	if _, err := Parse("loop l\nx =\n", nil); err == nil {
		t.Error("nil-machine parse must still reject syntax errors")
	}
}
