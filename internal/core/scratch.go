package core

import (
	"sync"

	"modsched/internal/machine"
	"modsched/internal/mii"
)

// scratch is the reusable working set of one scheduling call. Every II
// attempt of the Figure 2 search rebuilds the same-shape state (times,
// alternatives, MRT, priorities), and every loop of a corpus rebuilds it
// again; holding the buffers here turns those rebuilds into O(n) fills
// with no allocator traffic. Scratches are pooled: concurrent scheduling
// calls (the parallel experiment harness) each take their own, so there
// is no sharing and no locking on the hot path.
type scratch struct {
	st state
	// h is the HeightR output buffer (doubles as the priority vector).
	h []int
	// conflictBuf/conflictSeen implement the allocation-free duplicate
	// filter of conflictVictims: seen[op] == epoch marks op as already
	// collected in the current scan. The epoch is bumped per scan so the
	// array never needs clearing; entries start at 0 and epochs at 1.
	conflictBuf   []int
	conflictSeen  []int
	conflictEpoch int
	// mii holds the MinDist matrix buffers shared by the MII bounds
	// computation and the slack scheduler's per-attempt closure.
	mii mii.Scratch
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(sc *scratch) { scratchPool.Put(sc) }

// resetInts returns buf resized to n with every element set to v,
// reusing the backing array when it is large enough.
func resetInts(buf []int, n, v int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = v
	}
	return buf
}

// resetInt8s is resetInts for []int8 (the selfConsistent memo).
func resetInt8s(buf []int8, n int, v int8) []int8 {
	if cap(buf) < n {
		buf = make([]int8, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = v
	}
	return buf
}

// resetBools is resetInts for []bool.
func resetBools(buf []bool, n int, v bool) []bool {
	if cap(buf) < n {
		buf = make([]bool, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = v
	}
	return buf
}

// newState prepares the scratch's state for one II attempt. The returned
// *state aliases the scratch and is valid until the next newState call.
func (sc *scratch) newState(p *problem, ii int) *state {
	s := &sc.st
	n := p.loop.NumOps()
	s.p = p
	s.ii = ii
	s.times = resetInts(s.times, n, -1)
	s.alts = resetInts(s.alts, n, -1)
	s.prev = resetInts(s.prev, n, -1)
	s.never = resetBools(s.never, n, true)
	s.prio = nil // assigned by the priority selection
	if s.mrt == nil {
		s.mrt = &mrt{}
	}
	s.mrt.reset(ii, p.mach.NumResources())
	// opcodeOrder is II-independent but lazily built; prewarm forces it
	// before the speculative II race forks, so this call is read-only in
	// candidate goroutines.
	p.opcodeOrder()
	if p.opts.ScanMRT {
		s.comp = nil
		s.selfOK = resetInt8s(s.selfOK, int(p.altOff[n]), 0)
	} else {
		s.comp = p.mach.Compiled(ii)
		s.selfOK = s.selfOK[:0]
	}
	s.ready = s.ready[:0]
	s.heapLive = false
	s.unscheduled = n
	s.forceEarly = false
	if cap(sc.conflictSeen) < n {
		sc.conflictSeen = make([]int, n)
		sc.conflictEpoch = 0
	}
	return s
}

// conflictVictims returns the distinct ops whose MRT reservations collide
// with tab placed at slot. It replaces the old mrt.conflicts, which
// allocated a result slice and a seen-map per call — one pair per
// scheduling step and per forced-placement alternative, the single
// largest allocation source of the scheduler's inner loop. The returned
// slice aliases the scratch and is valid until the next call.
func (s *state) conflictVictims(slot int, tab machine.ReservationTable) []int {
	sc := s.p.scratch
	if sc == nil {
		// Direct state construction in tests: fall back to allocating.
		return s.mrt.conflicts(slot, tab)
	}
	sc.conflictEpoch++
	epoch := sc.conflictEpoch
	buf := sc.conflictBuf[:0]
	for _, u := range tab.Uses {
		if o := s.mrt.owner[s.mrt.cell(slot+u.Time, u.Resource)]; o != -1 && sc.conflictSeen[o] != epoch {
			sc.conflictSeen[o] = epoch
			buf = append(buf, o)
		}
	}
	sc.conflictBuf = buf
	return buf
}
