package mii

import (
	"modsched/internal/ir"
)

// Cross-II incremental MinDist.
//
// The MinDist matrix at a candidate II is the max-plus closure of the
// edge weights Delay(e) - II*Distance(e). Only the scalar weights depend
// on II; the path structure does not. Every entry is therefore the upper
// envelope of affine functions of II,
//
//	MinDist[i][j](II) = max over path profiles (delay, dist) of
//	                    delay - dist*II,
//
// where (delay, dist) are the summed delays and distances of the paths
// the Floyd-Warshall recurrence composes. A Profile materializes those
// coefficient sets once per (loop, node set); evaluating one candidate II
// is then an affine max per entry — O(n^2 * s) with tiny per-pair set
// sizes s — instead of an O(n^3) closure per II.
//
// Exactness. The sets are built by running the *same* in-place
// Floyd-Warshall recurrence as Scratch.MinDist over set-valued cells: the
// scalar update d[i][j] = max(d[i][j], dik + d[k][j]) (with dik cached
// per (k,i) row exactly as the scalar code caches it) becomes the
// Pareto-pruned union S[i][j] = S[i][j] ∪ (Sik ⊕ S[k][j]). Because
// max(f+g) = max(f) + max(g) for upper envelopes evaluated at a fixed II,
// and Pareto pruning only discards pairs dominated at *every* II >= 0,
// an inductive argument over the identical operation sequence gives
//
//	eval(S[i][j], II) == scalar-FW d[i][j] at II, for every II >= 0,
//
// including IIs below RecMII where positive-weight circuits make the
// scalar in-place result order-sensitive: both computations perform the
// same reads and writes in the same order, so they stay in lockstep.
// TestProfileMatchesFloydWarshall pins this at every II over random
// graphs and the regression corpus.
//
// Fallback. Pathological graphs can accumulate large coefficient sets
// (the frontier size is bounded by the number of distinct path distance
// sums). Building aborts once any cell exceeds maxProfileCoeffs and the
// Profile reports !OK(); callers then fall back to the scalar
// Floyd-Warshall per II, which is always available.

// Coeff is one path profile: the summed delay and distance of a family of
// dependence paths. Its value at a candidate II is Delay - Dist*II.
type Coeff struct {
	Delay, Dist int
}

// maxProfileCoeffs caps the per-cell coefficient-set size. Real
// dependence graphs stay in low single digits (distances are small and
// Pareto pruning keeps one delay per distinct distance); the cap only
// exists so adversarial inputs degrade to the scalar path instead of
// exploding.
const maxProfileCoeffs = 24

// Profile holds the II-independent MinDist coefficients for one node set
// of one loop. Build once with BuildProfile, evaluate per candidate II
// with Eval/Diagonal; a Profile is immutable after construction and safe
// for concurrent readers (the speculative II race shares one Profile
// across candidate goroutines).
type Profile struct {
	nodes []int // loop op indices covered, in matrix order
	index []int // loop op index -> matrix row, -1 where not covered
	n     int
	sets  [][]Coeff // n*n cells; empty cell == NegInf (no path)
	ok    bool
}

// OK reports whether the profile was built within the size cap. A !OK()
// profile must not be evaluated; use the scalar Floyd-Warshall instead.
func (p *Profile) OK() bool { return p != nil && p.ok }

// Nodes returns the covered loop op indices in matrix order.
func (p *Profile) Nodes() []int { return p.nodes }

// Coeffs returns the coefficient set for loop ops (i, j), which must be
// covered. The returned slice is shared; callers must not mutate it.
func (p *Profile) Coeffs(i, j int) []Coeff {
	return p.sets[p.index[i]*p.n+p.index[j]]
}

// evalCoeff evaluates one path profile at a candidate II with the
// overflow guard of this package: NegInf (math.MinInt/4) leaves headroom
// for adding two in-range path lengths, and this evaluation must never
// produce a value that wraps past it. A dist*II product large enough to
// leave that range saturates to NegInf — at such IIs the path is
// infinitely unprofitable, and NegInf is exactly "no usable path".
// TestEvalCoeffNoWrap pins that a pathological dist*II cannot wrap.
func evalCoeff(c Coeff, ii int) int {
	if c.Dist > 0 {
		// c.Delay - c.Dist*ii < NegInf  <=>  ii > (c.Delay - NegInf)/c.Dist.
		// Both sides of the division are nonnegative (Delay > NegInf
		// always holds for built profiles), so the quotient cannot
		// itself overflow.
		if ii > (c.Delay-NegInf)/c.Dist {
			return NegInf
		}
	}
	return c.Delay - c.Dist*ii
}

// evalSet is the affine max over one cell: NegInf for the empty set.
func evalSet(set []Coeff, ii int) int {
	v := NegInf
	for _, c := range set {
		if e := evalCoeff(c, ii); e > v {
			v = e
		}
	}
	return v
}

// Diagonal evaluates only the matrix diagonal at the candidate II and
// reports whether any entry is positive — the RecMII feasibility test —
// and whether any entry is exactly zero (a tight recurrence circuit).
// O(n * s) against the O(n^3) scalar closure.
func (p *Profile) Diagonal(ii int, c *Counters) (positive, zero bool) {
	if c != nil {
		c.ProfileProbes++
	}
	for r := 0; r < p.n; r++ {
		switch v := evalSet(p.sets[r*p.n+r], ii); {
		case v > 0:
			return true, false
		case v == 0:
			zero = true
		}
	}
	return false, zero
}

// Eval materializes the full MinDist matrix at the candidate II into ws's
// reusable buffers, byte-identical to what Scratch.MinDist computes but
// in O(n^2 * s). The returned *MinDist aliases ws like Scratch.MinDist's
// result does.
func (p *Profile) Eval(ws *Scratch, ii int, c *Counters) *MinDist {
	md := &ws.md
	nOps := len(p.index)
	n := p.n

	// Dense index upkeep, mirroring Scratch.MinDist (see its invariant).
	if cap(md.index) < nOps {
		md.index = make([]int, nOps)
		for i := range md.index {
			md.index[i] = -1
		}
	} else {
		full := md.index[:cap(md.index)]
		for _, v := range md.Nodes {
			full[v] = -1
		}
		md.index = full[:nOps]
	}
	md.Nodes = append(md.Nodes[:0], p.nodes...)
	for r, v := range md.Nodes {
		md.index[v] = r
	}

	md.II = ii
	md.n = n
	if cap(md.d) < n*n {
		md.d = make([]int, n*n)
	} else {
		md.d = md.d[:n*n]
	}
	if c != nil {
		c.ProfileProbes++
	}
	for i := range md.d {
		md.d[i] = evalSet(p.sets[i], ii)
	}
	return md
}

// BuildProfile computes the coefficient sets for the given node subset of
// the loop (pass AllNodes(l) for the whole graph). delays is indexed like
// l.Edges; only edges with both endpoints inside nodes contribute. The
// result reports !OK() when the size cap was hit, in which case callers
// must fall back to the scalar per-II Floyd-Warshall.
func BuildProfile(l *ir.Loop, delays []int, nodes []int, c *Counters) *Profile {
	nOps := l.NumOps()
	n := len(nodes)
	p := &Profile{
		nodes: append([]int(nil), nodes...),
		index: make([]int, nOps),
		n:     n,
		sets:  make([][]Coeff, n*n),
		ok:    true,
	}
	if c != nil {
		c.ProfileBuilds++
	}
	for i := range p.index {
		p.index[i] = -1
	}
	for r, v := range p.nodes {
		p.index[v] = r
	}

	// Initialization mirrors the scalar matrix: per (from,to) keep the
	// edge-implied coefficients. The scalar code keeps only the max weight
	// at the build II; here every edge contributes its (delay, distance)
	// pair and Pareto pruning keeps exactly the pairs that can win at some
	// II, which includes the scalar max at every II.
	for ei, e := range l.Edges {
		r, cc := p.index[e.From], p.index[e.To]
		if r < 0 || cc < 0 {
			continue
		}
		p.sets[r*n+cc] = mergeCoeff(p.sets[r*n+cc], Coeff{Delay: delays[ei], Dist: e.Distance})
	}

	// Set-valued in-place Floyd-Warshall, same loop structure and
	// read/write order as Scratch.MinDist: the (k,i) row caches S[i][k]
	// before the inner loop exactly as the scalar code caches dik, so the
	// two computations stay in lockstep even when positive-weight circuits
	// (II below RecMII) make the in-place result order-sensitive.
	var sik, skjBuf []Coeff // snapshot buffers, reused across rows
	for k := 0; k < n; k++ {
		kn := k * n
		for i := 0; i < n; i++ {
			cell := p.sets[i*n+k]
			if len(cell) == 0 {
				continue
			}
			// Snapshot: the j loop below may update S[i][k] (at j == k)
			// but the scalar code keeps using its cached dik.
			sik = append(sik[:0], cell...)
			in := i * n
			for j := 0; j < n; j++ {
				skj := p.sets[kn+j]
				if len(skj) == 0 {
					continue
				}
				if i == k {
					// S[i][j] aliases S[k][j] on this row: the scalar
					// code reads d[k][j] before writing it, so the merge
					// below must see the pre-update set, not a backing
					// array it is mutating mid-iteration.
					skj = append(skjBuf[:0], skj...)
					skjBuf = skj
				}
				merged := p.sets[in+j]
				for _, a := range sik {
					for _, b := range skj {
						merged = mergeCoeff(merged, Coeff{Delay: a.Delay + b.Delay, Dist: a.Dist + b.Dist})
					}
				}
				if len(merged) > maxProfileCoeffs {
					p.ok = false
					p.sets = nil
					return p
				}
				p.sets[in+j] = merged
			}
		}
	}
	return p
}

// mergeCoeff inserts nc into a Pareto frontier kept sorted by Dist
// ascending with Delay strictly increasing: a pair is dominated (and
// dropped) when another pair has Delay >= its Delay and Dist <= its Dist,
// i.e. is at least as good at every II >= 0.
func mergeCoeff(set []Coeff, nc Coeff) []Coeff {
	// Find the insertion point by Dist.
	lo, hi := 0, len(set)
	for lo < hi {
		mid := (lo + hi) / 2
		if set[mid].Dist < nc.Dist {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Dominated by an existing pair with Dist <= nc.Dist and Delay >=
	// nc.Delay? Delays increase with Dist, so checking the predecessor
	// (largest Dist <= nc.Dist) suffices — with equal Dist at set[lo].
	if lo < len(set) && set[lo].Dist == nc.Dist {
		if set[lo].Delay >= nc.Delay {
			return set
		}
		// nc strictly improves the same distance: replace, then sweep.
		set[lo] = nc
	} else if lo > 0 && set[lo-1].Delay >= nc.Delay {
		return set
	} else {
		set = append(set, Coeff{})
		copy(set[lo+1:], set[lo:])
		set[lo] = nc
	}
	// Drop successors nc now dominates (Dist >= nc.Dist, Delay <= nc.Delay).
	keep := lo + 1
	for j := lo + 1; j < len(set); j++ {
		if set[j].Delay <= nc.Delay {
			continue
		}
		set[keep] = set[j]
		keep++
	}
	return set[:keep]
}
