package modsched_test

import (
	"strings"
	"testing"

	"modsched"
)

// TestPublicAPIQuickstart drives the documented public surface end to end:
// builder -> bounds -> schedule -> both code schemas -> simulation.
func TestPublicAPIQuickstart(t *testing.T) {
	m := modsched.Cydra5()
	b := modsched.NewBuilder("daxpy", m)
	xi := b.Future()
	b.DefineAsImm(xi, "aadd", 8, xi.Back(1))
	x := b.Define("load", xi)
	yi := b.Future()
	b.DefineAsImm(yi, "aadd", 8, yi.Back(1))
	y := b.Define("load", yi)
	t1 := b.Define("fmul", b.Invariant("a"), x)
	t2 := b.Define("fadd", y, t1)
	si := b.Future()
	b.DefineAsImm(si, "aadd", 8, si.Back(1))
	b.Effect("store", si, t2)
	b.Effect("brtop")
	loop, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	bounds, err := modsched.ComputeMII(loop, m, modsched.VLIWDelays)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := modsched.Compile(loop, m, modsched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sched.MII != bounds.MII || sched.II < sched.MII {
		t.Errorf("II=%d MII=%d boundsMII=%d", sched.II, sched.MII, bounds.MII)
	}
	if err := modsched.CheckSchedule(sched); err != nil {
		t.Fatal(err)
	}

	ls, err := modsched.ListSchedules(loop, m, modsched.VLIWDelays)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Length > sched.Length {
		t.Errorf("acyclic list SL %d should not exceed modulo SL %d", ls.Length, sched.Length)
	}

	kern, err := modsched.GenerateKernel(sched)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(kern.String(), "kernel daxpy") {
		t.Error("kernel rendering broken")
	}

	u, err := modsched.PlanUnroll(sched)
	if err != nil {
		t.Fatal(err)
	}
	trips := modsched.ValidTrips(sched.StageCount(), u, 40)
	flat, err := modsched.GenerateFlat(sched, trips)
	if err != nil {
		t.Fatal(err)
	}

	mem := map[int64]float64{}
	for i := int64(0); i < trips; i++ {
		mem[1000+8*(i+1)] = 2
		mem[50000+8*(i+1)] = 1
	}
	spec := modsched.RunSpec{
		Init: map[modsched.Reg]float64{
			b.RegOf(xi): 1000, b.RegOf(yi): 50000, b.RegOf(si): 50000,
			b.RegOf(b.Invariant("a")): 10,
		},
		Mem:   mem,
		Trips: trips,
	}
	ref, err := modsched.RunReference(loop, spec)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := modsched.RunKernel(kern, m, spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := modsched.RunFlat(flat, m, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < trips; i++ {
		a := int64(50000 + 8*(i+1))
		if ref.Mem[a] != 21 {
			t.Fatalf("reference y[%d] = %v, want 21", i, ref.Mem[a])
		}
		if r1.Mem[a] != 21 || r2.Mem[a] != 21 {
			t.Fatalf("pipelined y[%d] = %v / %v, want 21", i, r1.Mem[a], r2.Mem[a])
		}
	}
}

func TestPublicAPIParseAndPrint(t *testing.T) {
	m := modsched.Tiny()
	src := `
loop t
x = load p
y = fadd x, x
store q, y
brtop
`
	l, err := modsched.ParseLoop(src, m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(modsched.PrintLoop(l), "fadd") {
		t.Error("print lost ops")
	}
	if _, err := modsched.Compile(l, m, modsched.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICorpora(t *testing.T) {
	m := modsched.Cydra5()
	ks, err := modsched.LivermoreKernels(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 27 {
		t.Errorf("kernels = %d, want 27", len(ks))
	}
	cfg := modsched.DefaultGenConfig()
	cfg.N = 30
	loops, err := modsched.SyntheticCorpus(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 30 {
		t.Errorf("synthetic corpus = %d, want 30", len(loops))
	}
	// The full paper corpus is 1300 + 27.
	cfg2 := modsched.DefaultGenConfig()
	if cfg2.N != 1300 {
		t.Errorf("default corpus size = %d, want 1300", cfg2.N)
	}
}

func TestPublicAPICustomMachine(t *testing.T) {
	m := modsched.NewMachine("custom")
	r := m.AddResource("fu")
	m.MustAddOpcode(&modsched.Opcode{Name: "op", Latency: 1,
		Alternatives: []modsched.Alternative{{Name: "fu", Table: modsched.SimpleTableFor(r)}}})
	m.MustAddOpcode(&modsched.Opcode{Name: "START", Latency: 0,
		Alternatives: []modsched.Alternative{{Name: "none"}}})
	m.MustAddOpcode(&modsched.Opcode{Name: "STOP", Latency: 0,
		Alternatives: []modsched.Alternative{{Name: "none"}}})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	b := modsched.NewBuilder("l", m)
	b.Define("op", b.Invariant("c"))
	b.Define("op", b.Invariant("c"))
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := modsched.Compile(l, m, modsched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 2 {
		t.Errorf("II = %d, want 2 (two ops, one unit)", s.II)
	}
}
