package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSoak drives the service with a mixed single/batch workload from 8
// concurrent clients and then reconciles three ledgers exactly:
//
//  1. every response body is byte-identical to a reference compile of
//     the same request on an independent server instance,
//  2. the client-side tally of requests, loops, and sheds equals the
//     server's /metrics counters,
//  3. the cache counters balance: one miss per distinct key, everything
//     else a hit or an in-flight join.
//
// The full run is 10000 requests; -short trims it.
func TestSoak(t *testing.T) {
	totalRequests := 10000
	if testing.Short() {
		totalRequests = 600
	}
	const clients = 8

	// The request mix: schedulable loops across machines and options
	// (cache keys), one proven-infeasible loop, one parse error.
	specs := []CompileRequest{
		{Source: daxpySource},
		{Source: daxpySource, Machine: "tiny"},
		{Source: daxpySource, Options: &OptionsSpec{Priority: "fifo"}},
		{Source: chainSource(12)},
		{Source: chainSource(20), Options: &OptionsSpec{Delays: "conservative"}},
		{Source: impossibleSource},
		{Source: "loop broken\nnonsense\n"},
	}
	// Distinct cache keys: the specs that reach the scheduler (the
	// infeasible loop dies at the bound computation, the parse error at
	// the parser — neither touches the cache).
	const cacheKeys = 5

	// Reference outcomes from an independent instance — same pipeline,
	// separate cache, sequential.
	ref := New(Config{})
	expected := make([]BatchItem, len(specs))
	for i := range specs {
		expected[i] = ref.compileItem(context.Background(), &specs[i])
	}
	expectBody := func(item BatchItem) []byte {
		var v any = item.Result
		if item.Error != nil {
			v = item.Error
		}
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return append(b, '\n')
	}

	s, ts := newTestServer(t, Config{MaxInFlight: 4, QueueDepth: 8, QueueWait: 30 * time.Second})

	// tally is the client-side ledger the server's /metrics must match.
	type tally struct {
		requests map[[2]string]int64 // {endpoint, status} -> count
		loops    map[string]int64
		shed     int64
	}
	merged := tally{requests: make(map[[2]string]int64), loops: make(map[string]int64)}
	var mu sync.Mutex

	outcome := func(item BatchItem) string {
		if item.Error != nil {
			return item.Error.Kind
		}
		if item.Result.Degradation != nil {
			return "degraded"
		}
		return "ok"
	}

	// post sends one request, retrying on 429 per the Retry-After
	// contract (capped so a wedged server fails the test instead of
	// hanging it). Every attempt lands in the tally, including the shed
	// ones — that is what makes the reconciliation exact.
	post := func(tl *tally, endpoint string, payload []byte) (int, []byte) {
		path := "/compile"
		if endpoint == "batch" {
			path = "/compile/batch"
		}
		for attempt := 0; ; attempt++ {
			resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Error(err)
				return 0, nil
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Error(err)
				return 0, nil
			}
			tl.requests[[2]string{endpoint, fmt.Sprint(resp.StatusCode)}]++
			if resp.StatusCode == http.StatusTooManyRequests {
				tl.shed++
				if attempt > 20 {
					t.Error("request shed more than 20 times")
					return resp.StatusCode, body
				}
				time.Sleep(10 * time.Millisecond)
				continue
			}
			return resp.StatusCode, body
		}
	}

	perClient := totalRequests / clients
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tl := tally{requests: make(map[[2]string]int64), loops: make(map[string]int64)}
			for i := 0; i < perClient; i++ {
				k := (c*31 + i) % len(specs)
				if i%4 == 3 {
					// One batch of three consecutive specs.
					idx := []int{k, (k + 1) % len(specs), (k + 2) % len(specs)}
					breq := BatchRequest{}
					want := BatchResponse{}
					for _, j := range idx {
						breq.Loops = append(breq.Loops, specs[j])
						want.Results = append(want.Results, expected[j])
					}
					payload, err := json.Marshal(breq)
					if err != nil {
						t.Error(err)
						return
					}
					status, body := post(&tl, "batch", payload)
					if status != http.StatusOK {
						t.Errorf("batch status = %d (%s)", status, body)
						return
					}
					wantBody, err := json.Marshal(&want)
					if err != nil {
						t.Error(err)
						return
					}
					if !bytes.Equal(body, append(wantBody, '\n')) {
						t.Errorf("batch response diverges from reference:\n got %s\nwant %s\n", body, wantBody)
						return
					}
					for _, j := range idx {
						tl.loops[outcome(expected[j])]++
					}
				} else {
					payload, err := json.Marshal(&specs[k])
					if err != nil {
						t.Error(err)
						return
					}
					status, body := post(&tl, "compile", payload)
					if status != expected[k].Status {
						t.Errorf("spec %d status = %d, want %d (%s)", k, status, expected[k].Status, body)
						return
					}
					if want := expectBody(expected[k]); !bytes.Equal(body, want) {
						t.Errorf("spec %d response diverges from reference:\n got %s\nwant %s", k, body, want)
						return
					}
					tl.loops[outcome(expected[k])]++
				}
			}
			mu.Lock()
			for k, v := range tl.requests {
				merged.requests[k] += v
			}
			for k, v := range tl.loops {
				merged.loops[k] += v
			}
			merged.shed += tl.shed
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	// Reconcile against /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	series := parseExposition(t, string(text))

	for k, want := range merged.requests {
		name := fmt.Sprintf("mschedd_requests_total{endpoint=%q,code=%q}", k[0], k[1])
		if got := series[name]; got != want {
			t.Errorf("%s = %d, server-side; client tallied %d", name, got, want)
		}
	}
	for k, want := range merged.loops {
		name := fmt.Sprintf("mschedd_loops_total{outcome=%q}", k)
		if got := series[name]; got != want {
			t.Errorf("%s = %d, server-side; client tallied %d", name, got, want)
		}
	}
	if got := series["mschedd_shed_total"]; got != merged.shed {
		t.Errorf("mschedd_shed_total = %d, client saw %d sheds", got, merged.shed)
	}

	st := s.CacheStats()
	if st.Misses != cacheKeys {
		t.Errorf("cache misses = %d, want exactly %d (one per distinct key)", st.Misses, cacheKeys)
	}
	compiles := merged.loops["ok"] + merged.loops["degraded"]
	if got := st.Hits + st.Inflight + st.Misses; got != compiles {
		t.Errorf("cache hits+joins+misses = %d, want %d (every served schedule accounted for)", got, compiles)
	}
	if series["mschedd_cache_hits_total"] != st.Hits ||
		series["mschedd_cache_misses_total"] != st.Misses {
		t.Errorf("/metrics cache counters (hits=%d misses=%d) disagree with Stats() (%+v)",
			series["mschedd_cache_hits_total"], series["mschedd_cache_misses_total"], st)
	}
	if got := series["mschedd_in_flight"]; got != 0 {
		t.Errorf("mschedd_in_flight = %d after the soak, want 0", got)
	}
}

// parseExposition reads "name{labels} value" lines into a map, skipping
// comments and non-integer samples.
func parseExposition(t *testing.T, text string) map[string]int64 {
	t.Helper()
	series := make(map[string]int64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil {
			continue // histogram sum etc.
		}
		series[line[:i]] = v
	}
	return series
}
