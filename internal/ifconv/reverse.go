package ifconv

import (
	"fmt"

	"modsched/internal/ir"
)

// ReverseIfConvert regenerates structured control flow from a predicated
// single-block loop (the paper's step for machines without predicated
// execution, after Warter et al., "Reverse if-conversion"): consecutive
// operations guarded by the same predicate become an if-block, and —
// when expandSel is set — select operations become if/else assignments,
// leaving no predication or conditional moves in the result.
//
// The inverse direction of Convert: for any loop this package produced,
// RunStructured(ReverseIfConvert(l)) computes exactly what
// vliw.RunReference(l) computes. Restrictions: predicates must be read at
// distance 0 (IF-conversion never produces anything else), and operations
// may not be multiply-guarded (one predicate register per op, which is
// this IR's shape by construction).
func ReverseIfConvert(l *ir.Loop, expandSel bool) (*Region, map[string]ir.Reg, error) {
	variant := l.VariantRegs()
	nameOf := func(r ir.Reg) string {
		if variant[r] {
			return fmt.Sprintf("v%d", r)
		}
		return fmt.Sprintf("c%d", r)
	}
	refOf := func(r ir.Reg, dist int) Ref {
		return Ref{Name: nameOf(r), Back: dist}
	}
	names := make(map[string]ir.Reg)
	for _, op := range l.Ops {
		if op.Dest != ir.NoReg {
			names[nameOf(op.Dest)] = op.Dest
		}
		for _, r := range op.Srcs {
			names[nameOf(r)] = r
		}
		if op.Pred != ir.NoReg {
			names[nameOf(op.Pred)] = op.Pred
		}
	}

	rgn := &Region{Name: l.Name, EntryFreq: l.EntryFreq, LoopFreq: l.LoopFreq}

	// Group consecutive ops with the same guard into one If.
	var curIf *If
	var curPred ir.Reg
	flushIf := func() {
		if curIf != nil {
			rgn.Stmts = append(rgn.Stmts, *curIf)
			curIf = nil
			curPred = ir.NoReg
		}
	}
	emit := func(st Stmt, pred ir.Reg) {
		if pred == ir.NoReg {
			flushIf()
			rgn.Stmts = append(rgn.Stmts, st)
			return
		}
		if curIf == nil || curPred != pred {
			flushIf()
			curIf = &If{Cond: Ref{Name: nameOf(pred)}}
			curPred = pred
		}
		curIf.Then = append(curIf.Then, st)
	}

	for _, op := range l.RealOps() {
		if op.Opcode == "brtop" {
			continue // the loop-back branch is implicit in the Region form
		}
		if op.Pred != ir.NoReg && op.PredDist != 0 {
			return nil, nil, fmt.Errorf("ifconv: op %d guarded by a distance-%d predicate; reverse IF-conversion requires distance 0", op.ID, op.PredDist)
		}

		// Expand selects into if/else when requested.
		if expandSel && op.Opcode == "sel" && op.Pred == ir.NoReg && len(op.Srcs) == 3 {
			d := func(i int) int {
				if op.SrcDists != nil {
					return op.SrcDists[i]
				}
				return 0
			}
			flushIf()
			rgn.Stmts = append(rgn.Stmts, If{
				Cond: refOf(op.Srcs[0], d(0)),
				Then: []Stmt{Assign{Dest: nameOf(op.Dest), Opcode: "copy", Srcs: []Ref{refOf(op.Srcs[1], d(1))}}},
				Else: []Stmt{Assign{Dest: nameOf(op.Dest), Opcode: "copy", Srcs: []Ref{refOf(op.Srcs[2], d(2))}}},
			})
			continue
		}

		var srcs []Ref
		for si, r := range op.Srcs {
			dd := 0
			if op.SrcDists != nil {
				dd = op.SrcDists[si]
			}
			srcs = append(srcs, refOf(r, dd))
		}
		var st Stmt
		if op.Opcode == "store" {
			if len(srcs) != 2 {
				return nil, nil, fmt.Errorf("ifconv: store op %d has %d operands", op.ID, len(srcs))
			}
			st = Store{Addr: srcs[0], Val: srcs[1]}
		} else {
			if op.Dest == ir.NoReg {
				return nil, nil, fmt.Errorf("ifconv: op %d (%s) has no destination and is not a store/brtop", op.ID, op.Opcode)
			}
			st = Assign{Dest: nameOf(op.Dest), Opcode: op.Opcode, Srcs: srcs, Imm: op.Imm}
		}
		emit(st, op.Pred)
	}
	flushIf()
	return rgn, names, nil
}

// SpecFromRunSpec translates a vliw.RunSpec for the original predicated
// loop into the name-keyed Spec the regenerated structured form uses.
func SpecFromRunSpec(names map[string]ir.Reg, init map[ir.Reg]float64, initHist map[ir.Reg][]float64, mem map[int64]float64, trips int64) Spec {
	spec := Spec{
		Vars:       map[string]float64{},
		VarsHist:   map[string][]float64{},
		Invariants: map[string]float64{},
		Mem:        mem,
		Trips:      trips,
	}
	for name, reg := range names {
		if name[0] == 'v' {
			spec.Vars[name] = init[reg]
			if h, ok := initHist[reg]; ok {
				spec.VarsHist[name] = h
			}
		} else {
			spec.Invariants[name] = init[reg]
		}
	}
	return spec
}
